"""The long-lived merge service: registry, shards, snapshot caches.

:class:`MergeService` turns the one-shot ``join_all`` pipeline into a
registry-and-query engine.  Schemas are registered in batches; each
batch folds into the per-component :class:`~repro.service.shards.Shard`
builders (creating and merging shards as name overlap dictates) and
either commits atomically or rolls back without a trace.  Queries are
answered from generation-stamped snapshot caches
(:mod:`repro.service.snapshots`), so a read-mostly workload costs a
dictionary lookup per request, and a write invalidates only the
component it touches.

**Concurrency model (per-shard locking).**  The paper's merge is
component-local — a registration touches exactly the shards its class
names reach — so the service locks at that grain instead of
serializing everything:

* one short-lived **topology lock** guards the mutable registry maps
  (``class → shard``, ``sid → shard``, the in-flight reservations) and
  is only ever held for planning, validation and the commit swap —
  never during closure work;
* one **shard lock per component** serializes writers on the same
  component; a writer acquires the locks of exactly the shards its
  batch touches, *in ascending shard-id order* (bridging batches take
  several; the global order makes deadlock impossible), then rebuilds
  on clones outside the topology lock;
* **reads take no lock at all.**  Committed :class:`Shard` objects are
  immutable (a mutation publishes a *new* shard object), commits
  publish in a stale-reads-only order (new shards first, class map
  second, dead shards dropped third, generation bumped last), and the
  caches stamp conservatively — so a racing reader sees either the old
  consistent state or the new one, never a torn one, and a warm
  ``merged_view`` never waits behind an in-flight ``register``.

Writers that race on the same *new* class names are serialized through
**reservations**: the first validated writer claims the names (mapping
them to its target shard id under the topology lock), so contenders
plan onto the same shard id, block on its lock, and re-validate once
the claimant commits or rolls back.

**Telemetry.** Every instance reports into the global
:data:`repro.obs.metrics.REGISTRY` (last-wins, so the registry always
describes the newest service): ``service.register.{calls,schemas,
rollbacks,duration}``, ``service.merged_view.{hits,partial_hits,misses,
duration}``, ``service.query.duration``, plus ``service.components`` /
``service.generation`` / ``service.requests`` callback gauges.
Counters are always live; spans and duration histograms engage only
after :func:`repro.obs.enable`, and the read paths *sample* their
timing 1-in-``telemetry_sample_every`` requests.  The sample test is a
phase compare — ``(requests & mask) == phase`` where the phase is
unreachable while telemetry is off — so the disabled hot path executes
the very same instructions and the enabled-mode overhead on a warm
``merged_view`` is just the occasional sampled clock pair (measured
well under the 5% budget by ``benchmarks/bench_obs_overhead.py``).

>>> from repro.core.schema import Schema
>>> service = MergeService()
>>> service.register([
...     Schema.build(arrows=[("Dog", "owner", "Person")]),
...     Schema.build(arrows=[("Case", "judge", "Court")]),
... ])
RegisterReceipt(accepted=2, components=2, generation=1)
>>> service.merged_view("Dog").has_arrow("Dog", "owner", "Person")
True
>>> service.register([Schema.build(arrows=[("Person", "argues", "Case")])])
RegisterReceipt(accepted=1, components=1, generation=2)
>>> service.query("Dog").component == service.query("Court").component
True
>>> stats = service.service_stats()
>>> stats["registered_schemas"], stats["requests_served"]
(3, 3)
"""

from __future__ import annotations

import itertools
import threading
import weakref
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union, cast

from dataclasses import replace as _dc_replace
from pathlib import Path

from repro.check.witness import LockLike, WitnessedLock, witness_active
from repro.core.names import ClassName, name
from repro.core.schema import Schema
from repro.exceptions import (
    CorruptLogError,
    IncompatibleSchemasError,
    InvalidRequestError,
    RetiredSchemaError,
    ServiceShutdownError,
    UnknownClassError,
    UnknownSchemaError,
)
from repro.obs import _state as _obs_state
from repro.obs.metrics import Counter, Gauge, Histogram, REGISTRY
from repro.obs.tracing import span
from repro.perf.closure import ClosureBuilder
from repro.service.api_types import QueryResult, RegisterReceipt, RetireReceipt
from repro.service.shards import Shard, plan_groups
from repro.service.snapshots import ComponentSnapshot, SnapshotCache
from repro.service.storage import (
    RECOVERIES,
    REPLAYS,
    ComponentState,
    FileBackend,
    LogRecord,
    MemoryBackend,
    RegistrationEntry,
    ServiceState,
    StorageBackend,
    VersionState,
    _LazyMembers,
)

__all__ = ["MergeService"]

_MISS = SnapshotCache.MISS

ComponentRef = Union[int, ClassName, str]


def _new_topology_lock() -> LockLike:
    """The planner lock — witnessed when the debug witness is enabled.

    :func:`repro.check.witness.enable_witness` must be called *before*
    the service is constructed; existing locks are never retrofitted.
    """
    if witness_active():
        return WitnessedLock(planner=True)
    return threading.Lock()


def _new_shard_lock(sid: int) -> LockLike:
    """A shard lock, order-checked by sid when the witness is enabled."""
    if witness_active():
        return WitnessedLock(sid=sid)
    return threading.Lock()


class _ServiceTelemetry:
    """One service's instrument bundle, registered last-wins.

    Counters and histograms are owned per instance (a fresh service
    starts its telemetry from zero and replaces its predecessor in the
    global registry); the gauges read the live service through a weak
    reference so telemetry never keeps a dead service alive.
    """

    __slots__ = (
        "calls",
        "schemas",
        "rollbacks",
        "retries",
        "register_duration",
        "view_hits",
        "view_partial",
        "view_misses",
        "view_duration",
        "query_duration",
        "gauges",
    )

    def __init__(self, service: "MergeService") -> None:
        self.calls = REGISTRY.register(Counter("service.register.calls"))
        self.schemas = REGISTRY.register(Counter("service.register.schemas"))
        self.rollbacks = REGISTRY.register(
            Counter("service.register.rollbacks")
        )
        self.retries = REGISTRY.register(
            Counter("service.register.plan_retries")
        )
        self.register_duration = REGISTRY.register(
            Histogram("service.register.duration")
        )
        self.view_hits = REGISTRY.register(
            Counter("service.merged_view.hits")
        )
        self.view_partial = REGISTRY.register(
            Counter("service.merged_view.partial_hits")
        )
        self.view_misses = REGISTRY.register(
            Counter("service.merged_view.misses")
        )
        self.view_duration = REGISTRY.register(
            Histogram("service.merged_view.duration")
        )
        self.query_duration = REGISTRY.register(
            Histogram("service.query.duration")
        )
        ref = weakref.ref(service)

        def _reader(attr: str) -> "Callable[[], int]":
            def read() -> int:
                svc = ref()
                return int(getattr(svc, attr)) if svc is not None else 0

            return read

        def _components() -> int:
            svc = ref()
            return len(svc._shards) if svc is not None else 0

        self.gauges = [
            REGISTRY.register(Gauge("service.components", fn=_components)),
            REGISTRY.register(
                Gauge("service.generation", fn=_reader("_generation"))
            ),
            REGISTRY.register(
                Gauge("service.requests", fn=_reader("_requests"))
            ),
        ]

    def view_counts(self) -> Dict[str, int]:
        return {
            "hits": self.view_hits.value,
            "partial_hits": self.view_partial.value,
            "misses": self.view_misses.value,
        }


#: Live services, so flipping the global telemetry switch re-phases
#: every instance's read-path sampling in one pass.
_SERVICES: "weakref.WeakSet[MergeService]" = weakref.WeakSet()


def _sync_sampling(enabled: bool) -> None:
    for service in list(_SERVICES):
        service._sample_on = 0 if enabled else service._sample_mask + 1


_obs_state.subscribe(_sync_sampling)


class _GroupPlan:
    """One validated group of a write plan: where a batch slice lands.

    *absorbed* holds the committed shards the group merges (possibly
    none — then *sid* is freshly allocated), *reserved* the previously
    unassigned class names this writer claimed for *sid*.  The shard
    references are captured under the topology lock while the writer
    holds every involved shard lock, so they cannot change before the
    commit.
    """

    __slots__ = ("sid", "absorbed", "batch_indices", "reserved", "is_new")

    def __init__(
        self,
        sid: int,
        absorbed: List[Shard],
        batch_indices: List[int],
        reserved: List[ClassName],
        is_new: bool,
    ) -> None:
        self.sid: int = sid
        self.absorbed: List[Shard] = absorbed
        self.batch_indices: List[int] = batch_indices
        self.reserved: List[ClassName] = reserved
        self.is_new: bool = is_new


class MergeService:
    """A thread-safe registry of schemas serving merged views and queries.

    Writes lock per component (see the module docstring), reads are
    lock-free against published immutable shards.  *component_cache_size*
    bounds the per-shard merged-schema cache, *snapshot_cache_size* the
    request-level answer cache; both are pure memory ceilings — eviction
    costs a recomputation, never correctness.  *telemetry_sample_every*
    (a power of two) sets how often the read paths time themselves while
    telemetry is enabled: the default 64 keeps the warm-path overhead
    negligible; benchmarks pass 1 for full latency distributions.
    """

    def __init__(
        self,
        schemas: Iterable[Union[Schema, RegistrationEntry]] = (),
        *,
        component_cache_size: int = 4096,
        snapshot_cache_size: int = 256,
        telemetry_sample_every: int = 64,
        storage: Optional[StorageBackend] = None,
        snapshot_every: Optional[int] = None,
    ) -> None:
        if telemetry_sample_every < 1 or (
            telemetry_sample_every & (telemetry_sample_every - 1)
        ):
            raise InvalidRequestError(
                "telemetry_sample_every must be a power of two, got "
                f"{telemetry_sample_every!r}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise InvalidRequestError(
                f"snapshot_every must be positive, got {snapshot_every!r}"
            )
        #: Guards the registry maps below; held only for plan/validate/
        #: commit — never while closure work runs.
        self._topology = _new_topology_lock()  # lock: planner
        self._shards: Dict[int, Shard] = {}  # guarded-by(writes): _topology
        self._shard_locks: Dict[int, LockLike] = {}  # guarded-by: _topology
        self._class_to_sid: Dict[ClassName, int] = {}  # guarded-by(writes): _topology
        #: In-flight writers' claims on not-yet-committed class names.
        self._reserved: Dict[ClassName, int] = {}  # guarded-by: _topology
        self._next_sid = 0  # guarded-by: _topology
        self._generation = 0  # guarded-by(writes): _topology
        self._closed = False  # guarded-by(writes): _topology
        self._requests = 0
        self._ticker = itertools.count(1)  # frozen-after-init
        self._sample_mask = telemetry_sample_every - 1  # frozen-after-init
        # The phase trick: sampling tests `(requests & mask) == _sample_on`.
        # Enabled sets the phase to 0 (1-in-N requests match); disabled
        # sets it past the mask so no request ever matches — the compare
        # itself runs either way, keeping both modes instruction-identical.
        self._sample_on = 0 if _obs_state.enabled else self._sample_mask + 1
        self._component_cache = SnapshotCache(
            "service.components", maxsize=component_cache_size
        )
        self._snapshot_cache = SnapshotCache(
            "service.snapshots", maxsize=snapshot_cache_size
        )
        self._telemetry = _ServiceTelemetry(self)  # frozen-after-init
        #: The binding never changes after construction; the *object* is
        #: mutated (``append``) only under the topology lock, which is
        #: what makes log order equal commit order.
        self._storage: StorageBackend = (  # guarded-by(writes): _topology
            storage if storage is not None else MemoryBackend()
        )
        self._snapshot_every = snapshot_every  # frozen-after-init
        self._log_seq = 0  # guarded-by(writes): _topology
        self._last_cut_seq = 0  # guarded-by(writes): _topology
        #: The schema-lifecycle table: name → version records, sorted by
        #: version.  Values are replaced wholesale, never mutated.
        self._series: Dict[str, Tuple[VersionState, ...]] = {}  # guarded-by(writes): _topology
        #: True only while single-threaded recovery replays the log —
        #: suppresses re-appending and snapshot cuts.
        self._replaying = False
        #: During replay: the component sids the record being applied
        #: committed, forced onto fresh groups so the recovered registry
        #: hands out the same component ids the original did (rollbacks
        #: and plan retries burn ids that committed history never sees).
        self._replay_sids: Optional[Tuple[int, ...]] = None
        _SERVICES.add(self)
        self._recover()
        initial = list(schemas)
        if initial:
            self.register(initial)

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        *,
        component_cache_size: int = 4096,
        snapshot_cache_size: int = 256,
        telemetry_sample_every: int = 64,
        snapshot_every: Optional[int] = None,
        fsync: bool = True,
    ) -> "MergeService":
        """A service durably backed by directory *path* (warm restart).

        Creates the directory on first use; on every later open the
        registry is restored from the newest complete snapshot cut and
        the log suffix is replayed through the ordinary registration
        code path — the decoder re-validates every restored component's
        closure invariants before the service answers anything.  Raises
        :class:`~repro.exceptions.CorruptLogError` /
        :class:`~repro.exceptions.CorruptSnapshotError` when the
        persisted artifacts fail their integrity checks.
        """
        return cls(
            component_cache_size=component_cache_size,
            snapshot_cache_size=snapshot_cache_size,
            telemetry_sample_every=telemetry_sample_every,
            storage=FileBackend(path, fsync=fsync),
            snapshot_every=snapshot_every,
        )

    @property
    def telemetry(self) -> _ServiceTelemetry:
        """This instance's registered instruments (counters read live)."""
        return self._telemetry

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Refuse further requests (idempotent; in-flight calls finish).

        Also releases the storage backend's resources.  Durability does
        not depend on a clean close — every committed mutation was
        fsync'd when it was logged — so a killed process loses nothing
        a closed one keeps.
        """
        with self._topology:
            self._closed = True
        self._storage.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceShutdownError("the merge service has been shut down")

    # ------------------------------------------------------------------
    # Durability (storage backend, recovery, snapshot cuts)
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Restore from the backend: newest snapshot cut + log suffix.

        Runs single-threaded during construction, before the instance
        is shared.  Replayed records go through the ordinary
        ``register``/``retire`` code paths (with re-appending
        suppressed), so a warm restart and a cold re-registration of
        the same log are the *same computation* — the restart-
        equivalence property the recovery tests pin down.
        """
        state = self._storage.load_state()
        base_seq = 0
        if state is not None:
            self._restore_state(state)
            base_seq = state.seq
        replayed = 0
        last_seq = base_seq
        self._replaying = True
        try:
            for seq, record in self._storage.records(after=base_seq):
                if seq <= base_seq:  # backends may ignore the hint
                    continue
                self._apply_record(seq, record)
                last_seq = seq
                replayed += 1
        finally:
            self._replaying = False
        with self._topology:
            self._log_seq = last_seq
            self._last_cut_seq = base_seq
        if replayed:
            REPLAYS.inc(replayed)
        if state is not None or replayed:
            RECOVERIES.inc()
            # Recovery ends with a ready-to-serve registry: assembling
            # the global view here (still single-threaded, before the
            # instance is shared) means the first post-restart
            # ``merged_view`` is a cache hit instead of a latency spike
            # that re-materializes every component's closed relations.
            self._global_view()

    def _restore_state(self, state: ServiceState) -> None:
        """Adopt a decoded snapshot cut as the live registry layout.

        Each component's dense closure (already invariant-validated by
        the decoder) seeds a live builder via
        :meth:`ClosureBuilder.from_dense` — no member re-folding — and
        its merged view is pre-warmed into the component cache, which
        is what makes the first post-restart ``merged_view`` cheap.
        """
        with self._topology:
            for component in state.components:
                builder = ClosureBuilder.from_dense(component.dense)
                # The member sequence is adopted as-is: a FileBackend
                # hands back a lazily-decoded view whose hydration cost
                # is only paid by a later mutation of this shard.
                shard = Shard(
                    component.sid,
                    builder,
                    component.members,
                    component.generation,
                )
                self._shards[component.sid] = shard
                self._shard_locks[component.sid] = _new_shard_lock(
                    component.sid
                )
                for cls in builder.classes:
                    self._class_to_sid[cls] = component.sid
            self._series = {
                schema_name: tuple(versions)
                for schema_name, versions in state.series.items()
            }
            self._generation = state.generation
            self._next_sid = max(state.next_sid, self._next_sid)
        for component in state.components:
            self._component_cache.store(
                component.sid,
                component.dense.to_schema(),
                component.generation,
            )

    def _apply_record(self, seq: int, record: LogRecord) -> None:
        """Replay one log record; reject a log that no longer determines
        the state it recorded (Hellerstein-style: same log, same state)."""
        try:
            if record.kind == "register":
                self._replay_sids = record.sids or None
                try:
                    self.register(record.entries)
                finally:
                    self._replay_sids = None
            elif record.kind == "retire":
                if record.name is None:
                    raise CorruptLogError(
                        f"log record {seq} retires without a schema name"
                    )
                self.retire(record.name)
            else:
                raise CorruptLogError(
                    f"log record {seq} has unknown kind {record.kind!r}"
                )
        except CorruptLogError:
            raise
        except Exception as exc:
            # Only committed mutations are ever logged, so a replay that
            # fails (incompatible batch, duplicate version, unknown
            # name) means the log does not match the state it claims.
            raise CorruptLogError(
                f"log record {seq} no longer applies cleanly: {exc}"
            ) from exc
        if self._generation != record.generation:
            raise CorruptLogError(
                f"replaying log record {seq} produced generation "
                f"{self._generation}, but the record committed "
                f"generation {record.generation} — the log and the "
                f"registry have diverged"
            )

    def _append_log(self, record: LogRecord) -> None:  # requires-lock: _topology
        """Append one committed mutation (no-op while replaying).

        Called inside the commit critical section so log order equals
        commit order — the property that makes replay deterministic.
        The fsync happens under the topology lock: readers never take
        that lock, so only concurrent *writers* wait behind the flush.
        """
        if self._replaying:
            return
        self._log_seq = self._storage.append(record)

    def save(self) -> int:
        """Cut a full snapshot set now; returns the covered log position.

        Also runs automatically every *snapshot_every* committed log
        records.  The capture is consistent (taken under the topology
        lock) but the expensive part — sweeping each component's dense
        state and writing the files — happens outside every lock, off
        immutable shard objects.
        """
        self._check_open()
        state = self._capture_state()
        self._storage.save_state(state)
        with self._topology:
            if state.seq > self._last_cut_seq:
                self._last_cut_seq = state.seq
        return state.seq

    def _capture_state(self) -> ServiceState:
        with self._topology:
            shards = sorted(self._shards.values(), key=lambda s: s.sid)
            series = dict(self._series)
            generation = self._generation
            next_sid = self._next_sid
            seq = self._log_seq
        components = tuple(
            ComponentState(
                sid=shard.sid,
                generation=shard.generation,
                dense=shard.builder.dense_state(),
                # Keep a still-lazy member view as-is (a cut right
                # after recovery re-writes the raw docs verbatim);
                # lists are copied because later commits replace them.
                members=(
                    shard.schemas
                    if isinstance(shard.schemas, _LazyMembers)
                    else tuple(shard.schemas)
                ),
            )
            for shard in shards
        )
        return ServiceState(
            seq=seq,
            generation=generation,
            next_sid=next_sid,
            components=components,
            series=series,
        )

    def _maybe_cut(self) -> None:
        """Cut a snapshot when the log has grown past the cadence."""
        every = self._snapshot_every
        if every is None or self._replaying:
            return
        with self._topology:
            due = self._log_seq - self._last_cut_seq >= every
        if due:
            self.save()

    # ------------------------------------------------------------------
    # Registration (writers)
    # ------------------------------------------------------------------

    def register(
        self, schemas: Iterable[Union[Schema, RegistrationEntry]]
    ) -> RegisterReceipt:
        """Fold a batch of schemas into the registry — atomically.

        Items may be bare :class:`~repro.core.schema.Schema` values
        (anonymous) or :class:`~repro.service.storage.RegistrationEntry`
        wrappers that name the schema and enroll it in the lifecycle
        table (see :meth:`resolve_schema` / :meth:`retire`).

        The whole batch is applied to *clones* of the touched shards'
        builders first, while holding only those shards' locks — writes
        to disjoint components proceed in parallel; only if every schema
        folds in cleanly is the new layout swapped in (one generation
        bump for the batch).  On
        :class:`~repro.exceptions.IncompatibleSchemasError` (or a
        version conflict on a named entry) nothing is committed: shard
        layout, lifecycle table, generation and every cached answer are
        exactly as before the call — and nothing reaches the log, which
        records committed mutations only.

        With telemetry enabled the call produces a span tree —
        ``service.register`` → ``service.plan`` → one
        ``service.rebuild`` per touched component → ``service.snapshot``
        — and its duration lands in ``service.register.duration``.
        """
        incoming = [self._coerce_entry(item) for item in schemas]
        # Empty schemas assert nothing and belong to no component.
        batch_entries = [e for e in incoming if not e.schema.is_empty()]
        batch = [e.schema for e in batch_entries]
        tel = self._telemetry
        with span("service.register", schemas=len(incoming)) as register_span:
            self._check_open()
            tel.calls.inc()
            if not batch:
                with self._topology:
                    return RegisterReceipt(
                        accepted=len(incoming),
                        components=len(self._shards),
                        generation=self._generation,
                    )
            timing = _obs_state.enabled
            start = perf_counter() if timing else 0.0
            with span("service.plan", batch=len(batch)):
                groups, held = self._plan_and_lock(batch)
            try:
                try:
                    staged = self._rebuild(groups, batch)
                except IncompatibleSchemasError:
                    tel.rollbacks.inc()
                    register_span.set(rolled_back=True)
                    with self._topology:
                        self._abandon(groups)
                    raise
                with span("service.snapshot"):
                    with self._topology:
                        try:
                            series_update, logged = self._stage_series(
                                batch_entries
                            )
                        except InvalidRequestError:
                            tel.rollbacks.inc()
                            register_span.set(rolled_back=True)
                            self._abandon(groups)
                            raise
                        generation, components = self._commit(
                            staged, len(batch)
                        )
                        self._series.update(series_update)
                        self._append_log(
                            LogRecord(
                                kind="register",
                                generation=generation,
                                entries=logged,
                                sids=tuple(plan.sid for plan in groups),
                            )
                        )
            finally:
                for lock in reversed(held):
                    lock.release()
            self._maybe_cut()
            if timing:
                tel.register_duration.observe(perf_counter() - start)
            register_span.set(components=components, generation=generation)
            return RegisterReceipt(
                accepted=len(incoming),
                components=components,
                generation=generation,
            )

    @staticmethod
    def _coerce_entry(
        item: Union[Schema, RegistrationEntry]
    ) -> RegistrationEntry:
        if isinstance(item, RegistrationEntry):
            entry = item
        elif isinstance(item, Schema):
            entry = RegistrationEntry(item)
        else:
            raise InvalidRequestError(
                "register() accepts Schema or RegistrationEntry items, "
                f"got {type(item).__name__}"
            )
        if entry.name is not None and entry.schema.is_empty():
            raise InvalidRequestError(
                f"named registration {entry.name!r} must assert at least "
                "one class (empty schemas have no component to retire)"
            )
        return entry

    def _stage_series(  # requires-lock: _topology
        self, entries: List[RegistrationEntry]
    ) -> Tuple[
        Dict[str, Tuple[VersionState, ...]], Tuple[RegistrationEntry, ...]
    ]:
        """Validate named entries and compute the lifecycle-table delta.

        Topology lock held by the caller (versions must be checked
        against the same series state the commit publishes into).
        Returns the per-name replacement tuples plus the entries with
        versions and lifecycles *resolved* — the form that enters the
        log, so replay never depends on re-deriving defaults.  Raises
        :class:`~repro.exceptions.InvalidRequestError` on a version
        conflict, before anything is published.
        """
        update: Dict[str, Tuple[VersionState, ...]] = {}
        logged: List[RegistrationEntry] = []
        for entry in entries:
            if entry.name is None:
                logged.append(entry)
                continue
            current = update.get(entry.name)
            if current is None:
                current = self._series.get(entry.name, ())
            existing = {v.version for v in current}
            version = entry.version
            if version is None:
                version = max(existing, default=0) + 1
            elif version in existing:
                raise InvalidRequestError(
                    f"schema {entry.name!r} already has a version "
                    f"{version} (version numbers are never reused)"
                )
            lifecycle = (
                entry.lifecycle if entry.lifecycle is not None
                else "recommended"
            )
            versions = list(current)
            if lifecycle == "recommended":
                # The supersede chain: a new recommended version demotes
                # the previous one to "supported".
                versions = [
                    _dc_replace(v, lifecycle="supported")
                    if v.lifecycle == "recommended" and not v.retired
                    else v
                    for v in versions
                ]
            versions.append(
                VersionState(version, lifecycle, False, entry.schema)
            )
            versions.sort(key=lambda v: v.version)
            update[entry.name] = tuple(versions)
            logged.append(
                RegistrationEntry(entry.schema, entry.name, version, lifecycle)
            )
        return update, tuple(logged)

    def _plan_and_lock(
        self, batch: List[Schema]
    ) -> Tuple[List[_GroupPlan], List[LockLike]]:
        """Plan the batch and acquire exactly the locks it needs.

        The optimistic loop: plan under the topology lock, *release it*,
        acquire the planned shard locks in ascending sid order (blocking
        on contended components without stalling disjoint writers), then
        re-validate the plan under the topology lock.  A plan can go
        stale while we waited — a contended shard was absorbed into
        another, a rolled-back reservation vanished — in which case
        everything is released and the loop replans.  Each pass either
        returns or observed another writer's commit/rollback, so the
        loop terminates.

        On success the involved shards are frozen (we hold their locks),
        every previously-unassigned batch class is reserved to its
        target sid, and fresh components' sids + locks exist and are
        held.  Returns the group plans and every held lock (sorted by
        sid — release order is the reverse).
        """
        while True:
            with self._topology:
                plans = plan_groups(batch, self._class_to_sid, self._reserved)
                needed = sorted(
                    {sid for existing, _ in plans for sid in existing}
                )
                found = [
                    (sid, self._shard_locks.get(sid)) for sid in needed
                ]
            lock_for: Dict[int, LockLike] = {
                sid: lock for sid, lock in found if lock is not None
            }
            if len(lock_for) != len(needed):
                # A planned shard vanished before we even started
                # acquiring (absorbed elsewhere, or a rolled-back
                # reservation); replan from the current layout.
                self._telemetry.retries.inc()
                continue
            held: List[LockLike] = []
            for sid in needed:
                lock_for[sid].acquire()
                held.append(lock_for[sid])
            with self._topology:
                current = plan_groups(
                    batch, self._class_to_sid, self._reserved
                )
                current_needed = sorted(
                    {sid for existing, _ in current for sid in existing}
                )
                valid = current_needed == needed and all(
                    self._shard_locks.get(sid) is lock_for[sid]
                    for sid in needed
                )
                if valid:
                    return self._reserve(current, batch, held), held
            for lock in reversed(held):
                lock.release()
            self._telemetry.retries.inc()

    def _reserve(  # requires-lock: _topology
        self,
        plans: List[Tuple[Any, List[int]]],
        batch: List[Schema],
        held: List[LockLike],
    ) -> List[_GroupPlan]:
        """Claim sids and class names for a validated plan.

        Topology lock held by the caller.  Fresh groups get a new sid
        whose lock is created *pre-acquired* (appended to *held*; no
        other writer can know the sid before we publish the reservation,
        so acquiring it cannot block and the ascending-sid lock order is
        preserved — fresh sids sort after every existing one).  Every
        batch class with no committed assignment is reserved to its
        group's target sid so contending writers plan onto our lock.
        """
        groups: List[_GroupPlan] = []
        forced = self._replay_sids
        if forced is not None and len(forced) != len(plans):
            raise CorruptLogError(
                f"log record committed {len(forced)} component groups, "
                f"but the batch plans {len(plans)} — the log and the "
                f"registry have diverged"
            )
        # The loop's only acquire targets a fresh, unpublished lock (see
        # below) — no ordering constraint applies.
        for group_index, (existing_sids, batch_indices) in enumerate(  # check: ignore[lock-order]
            plans
        ):
            absorbed_sids = sorted(existing_sids)
            if absorbed_sids:
                sid = min(absorbed_sids)
                if forced is not None and forced[group_index] != sid:
                    raise CorruptLogError(
                        f"log record committed into component "
                        f"{forced[group_index]}, but replay resolves the "
                        f"group to component {sid}"
                    )
                absorbed = [self._shards[old] for old in absorbed_sids]
                is_new = False
            else:
                if forced is not None:
                    sid = forced[group_index]
                    if sid in self._shards or sid in self._shard_locks:
                        raise CorruptLogError(
                            f"log record allocates component {sid}, "
                            f"which already exists at replay time"
                        )
                    self._next_sid = max(self._next_sid, sid + 1)
                else:
                    sid = self._next_sid
                    self._next_sid += 1
                absorbed = []
                is_new = True
                lock = _new_shard_lock(sid)
                # Acquiring under the planner lock is sanctioned here
                # only because the lock is fresh: no other thread can
                # know the sid before the reservation is published, so
                # this acquire can never block.
                if isinstance(lock, WitnessedLock):
                    lock.acquire(fresh=True)  # check: ignore[lock-nesting]
                else:
                    lock.acquire()  # check: ignore[lock-nesting]
                self._shard_locks[sid] = lock
                held.append(lock)
            reserved = []
            for index in batch_indices:
                for cls in batch[index].classes:
                    if (
                        cls not in self._class_to_sid
                        and cls not in self._reserved
                    ):
                        self._reserved[cls] = sid
                        reserved.append(cls)
            groups.append(
                _GroupPlan(sid, absorbed, batch_indices, reserved, is_new)
            )
        return groups

    def _rebuild(
        self, groups: List[_GroupPlan], batch: List[Schema]
    ) -> List[Tuple[_GroupPlan, ClosureBuilder, List[Schema]]]:
        """The expensive half: fold each group on clones, no global lock.

        Only the involved shard locks are held, so disjoint writers run
        their closure work concurrently.  Raises
        :class:`IncompatibleSchemasError` with nothing published.
        """
        staged = []
        for plan in groups:
            with span(
                "service.rebuild",
                component=plan.sid,
                schemas=len(plan.batch_indices),
            ):
                if plan.absorbed:
                    # Grow the largest member in place (on a clone) and
                    # fold the others' schemas in.
                    primary = max(
                        plan.absorbed, key=lambda shard: len(shard.schemas)
                    )
                    builder = primary.builder.clone()
                    members = list(primary.schemas)
                    for shard in plan.absorbed:
                        if shard is primary:
                            continue
                        for schema in shard.schemas:
                            builder.add_schema(schema)
                            members.append(schema)
                else:
                    builder = ClosureBuilder()
                    members = []
                for index in plan.batch_indices:
                    builder.add_schema(batch[index])
                    members.append(batch[index])
            staged.append((plan, builder, members))
        return staged

    def _commit(  # requires-lock: _topology
        self,
        staged: List[Tuple[_GroupPlan, ClosureBuilder, List[Schema]]],
        batch_size: int,
    ) -> Tuple[int, int]:  # publishes: _shards, _class_to_sid, _generation
        """Swap the rebuilt shards in.  Topology lock held by the caller.

        Publication order matters for the lock-free readers: (1) the new
        shard objects, (2) the class map, (3) dropping absorbed shards,
        (4) the generation bump.  At every intermediate point a reader
        resolves to *some* committed shard whose content is current or a
        subset of current, and data can only ever be *fresher* than the
        generation it is stamped with — so a race costs at worst a cache
        miss, never a stale answer served as current.
        """
        generation = self._generation + 1
        for plan, builder, members in staged:
            self._shards[plan.sid] = Shard(
                plan.sid, builder, members, generation
            )
        for plan, builder, _members in staged:
            for cls in builder.classes:
                self._class_to_sid[cls] = plan.sid
            for cls in plan.reserved:
                self._reserved.pop(cls, None)
        for plan, _builder, _members in staged:
            for shard in plan.absorbed:
                if shard.sid != plan.sid:
                    self._shards.pop(shard.sid, None)
                    self._shard_locks.pop(shard.sid, None)
        self._generation = generation
        self._telemetry.schemas.inc(batch_size)
        return generation, len(self._shards)

    def _abandon(self, groups: List[_GroupPlan]) -> None:  # requires-lock: _topology
        """Undo a failed write's claims.  Topology lock held by caller.

        Reservations disappear and fresh sids' locks are deregistered
        (we still hold the lock objects; waiters wake, fail the
        identity re-validation, and replan).  Committed shards were
        never touched — their builders were only cloned.
        """
        for plan in groups:
            for cls in plan.reserved:
                self._reserved.pop(cls, None)
            if plan.is_new:
                self._shard_locks.pop(plan.sid, None)

    # ------------------------------------------------------------------
    # Schema lifecycle (named versions, retire)
    # ------------------------------------------------------------------

    def _live_versions(  # requires-lock: _topology
        self, schema_name: str
    ) -> List[VersionState]:
        """The not-yet-retired versions of a name; typed errors otherwise."""
        versions = self._series.get(schema_name)
        if versions is None:
            raise UnknownSchemaError(
                f"no registered schema is named {schema_name!r}"
            )
        live = [v for v in versions if not v.retired]
        if not live:
            raise RetiredSchemaError(
                f"schema {schema_name!r} has been retired"
            )
        return live

    @staticmethod
    def _preferred(live: List[VersionState]) -> VersionState:
        """Supersede-chain resolution: best lifecycle, then highest version."""
        for lifecycle in ("recommended", "supported", "obsolete"):
            candidates = [v for v in live if v.lifecycle == lifecycle]
            if candidates:
                return max(candidates, key=lambda v: v.version)
        return max(live, key=lambda v: v.version)

    def _owning_sids(  # requires-lock: _topology
        self, versions: List[VersionState]
    ) -> List[int]:
        """The shard ids the given versions' classes live in, ascending."""
        sids: set[int] = set()
        for version in versions:
            for cls in version.schema.classes:
                sid = self._class_to_sid.get(cls)
                if sid is not None:
                    sids.add(sid)
        return sorted(sids)

    def resolve_schema(self, schema_name: str) -> Schema:
        """The version the supersede chain currently recommends.

        A new ``recommended`` registration demotes its predecessor to
        ``supported``, so resolution always lands on the newest
        recommended version (falling back to the highest supported,
        then obsolete, version).  Raises
        :class:`~repro.exceptions.UnknownSchemaError` for names never
        registered and :class:`~repro.exceptions.RetiredSchemaError`
        once every version is retired.
        """
        self._check_open()
        with self._topology:
            live = self._live_versions(schema_name)
        return self._preferred(live).schema

    def schema_info(self, schema_name: str) -> Dict[str, Any]:
        """One named schema's lifecycle card: versions, states, component."""
        self._check_open()
        with self._topology:
            live = self._live_versions(schema_name)
            preferred = self._preferred(live)
            sid: Optional[int] = None
            for cls in preferred.schema.classes:
                sid = self._class_to_sid.get(cls)
                if sid is not None:
                    break
            versions = self._series[schema_name]
        return {
            "name": schema_name,
            "recommended": preferred.version,
            "component": sid,
            "versions": [
                {
                    "version": v.version,
                    "lifecycle": v.lifecycle,
                    "retired": v.retired,
                    "classes": len(v.schema.classes),
                }
                for v in versions
            ],
        }

    def retire(self, schema_name: str) -> RetireReceipt:
        """Withdraw every live version of a named schema — atomically.

        The first removal path: each owning component is *rebuilt* from
        its remaining member schemas (one occurrence of each retired
        version's schema is dropped; an equal anonymous registration
        survives), classes asserted only by the retired versions leave
        the registry, and the generation bump invalidates exactly the
        touched components' cached answers — untouched components keep
        their stamps and stay warm.  A component with no remaining
        members is dropped outright.  The retirement is logged like any
        other mutation, so restarts replay it.

        Locking mirrors :meth:`register`: plan under the topology lock,
        acquire the owning shard locks in ascending sid order, rebuild
        outside the topology lock, commit under it.  Raises
        :class:`~repro.exceptions.UnknownSchemaError` /
        :class:`~repro.exceptions.RetiredSchemaError` like
        :meth:`resolve_schema`.
        """
        tel = self._telemetry
        with span("service.retire", schema=schema_name) as retire_span:
            self._check_open()
            while True:
                with self._topology:
                    live = self._live_versions(schema_name)
                    sids = sorted(self._owning_sids(live))
                    maybe_locks = [
                        (sid, self._shard_locks.get(sid)) for sid in sids
                    ]
                lock_for: Dict[int, LockLike] = {
                    sid: lock for sid, lock in maybe_locks if lock is not None
                }
                if len(lock_for) != len(sids):
                    tel.retries.inc()
                    continue
                held: List[LockLike] = []
                for sid in sids:
                    lock_for[sid].acquire()
                    held.append(lock_for[sid])
                with self._topology:
                    try:
                        current_live = self._live_versions(schema_name)
                    except RetiredSchemaError:
                        # A racing retire won; surface it as already done.
                        for lock in reversed(held):
                            lock.release()
                        raise
                    valid = (
                        current_live == live
                        and sorted(self._owning_sids(current_live)) == sids
                        and all(
                            self._shard_locks.get(sid) is lock_for[sid]
                            for sid in sids
                        )
                    )
                    shards = (
                        [self._shards[sid] for sid in sids] if valid else []
                    )
                if valid:
                    break
                for lock in reversed(held):
                    lock.release()
                tel.retries.inc()
            try:
                drop = [v.schema for v in live]
                rebuilt: List[
                    Tuple[int, Optional[ClosureBuilder], List[Schema]]
                ] = []
                for shard in shards:
                    remaining = list(shard.schemas)
                    for schema in drop:
                        try:
                            remaining.remove(schema)
                        except ValueError:
                            pass
                    with span(
                        "service.rebuild",
                        component=shard.sid,
                        schemas=len(remaining),
                    ):
                        builder = (
                            ClosureBuilder(remaining) if remaining else None
                        )
                    rebuilt.append((shard.sid, builder, remaining))
                with self._topology:
                    generation = self._commit_retire(
                        schema_name, live, shards, rebuilt
                    )
                    self._append_log(
                        LogRecord(
                            kind="retire",
                            generation=generation,
                            name=schema_name,
                            versions=tuple(v.version for v in live),
                        )
                    )
            finally:
                for lock in reversed(held):
                    lock.release()
            self._maybe_cut()
            retire_span.set(generation=generation)
            return RetireReceipt(
                name=schema_name,
                versions=tuple(v.version for v in live),
                components=len(self._shards),
                generation=generation,
            )

    def _commit_retire(  # requires-lock: _topology
        self,
        schema_name: str,
        live: List[VersionState],
        shards: List[Shard],
        rebuilt: List[Tuple[int, Optional[ClosureBuilder], List[Schema]]],
    ) -> int:  # publishes: _shards, _class_to_sid, _generation
        """Publish a retirement.  Topology lock held by the caller.

        Same stale-reads-only publication order as :meth:`_commit`:
        (1) rebuilt shard objects, (2) class-map removals, (3) emptied
        shards dropped, (4) the lifecycle table, (5) the generation
        bump last.
        """
        generation = self._generation + 1
        for sid, builder, remaining in rebuilt:
            if builder is not None:
                self._shards[sid] = Shard(sid, builder, remaining, generation)
        for (sid, builder, _remaining), old in zip(rebuilt, shards):
            kept = (
                builder.classes if builder is not None else frozenset()
            )
            for cls in old.builder.classes - kept:
                if self._class_to_sid.get(cls) == sid:
                    del self._class_to_sid[cls]
        for sid, builder, _remaining in rebuilt:
            if builder is None:
                self._shards.pop(sid, None)
                self._shard_locks.pop(sid, None)
        retired = {v.version for v in live}
        self._series[schema_name] = tuple(
            _dc_replace(v, lifecycle="obsolete", retired=True)
            if v.version in retired
            else v
            for v in self._series[schema_name]
        )
        self._generation = generation
        return generation

    # ------------------------------------------------------------------
    # Queries (lock-free readers)
    # ------------------------------------------------------------------

    def _resolve(self, component: ComponentRef) -> Shard:
        """The live shard for a component ref, tolerating commit races.

        Shard ids are resolved in one step.  Class names need two reads
        (``class → sid``, ``sid → shard``) that can straddle a commit;
        the class map is always updated *before* absorbed shards are
        dropped, so a short retry converges on the post-commit shard.
        """
        if isinstance(component, int):
            shard = self._shards.get(component)
            if shard is None:
                raise UnknownClassError(
                    f"unknown component id {component!r}"
                )
            return shard
        cls = name(component)
        for _attempt in range(64):
            sid = self._class_to_sid.get(cls)
            if sid is None:
                raise UnknownClassError(
                    f"no registered schema mentions class {cls}"
                )
            shard = self._shards.get(sid)
            if shard is not None:
                return shard
        # Pathological contention: settle it with one consistent read.
        with self._topology:
            sid = self._class_to_sid.get(cls)
            if sid is None or sid not in self._shards:
                raise UnknownClassError(
                    f"no registered schema mentions class {cls}"
                )
            return self._shards[sid]

    def _component_schema(self, shard: Shard) -> Tuple[Schema, Counter]:
        """One shard's merged view, plus the outcome counter it earned.

        The outcome (``service.merged_view.hits`` or ``.misses``) is
        returned un-incremented: only the public entry point counts, so
        a global view assembled from many component lookups still
        registers as a single request.  Safe without locks: committed
        shards are immutable and ``ClosureBuilder.build`` mutates
        nothing, so the worst concurrent case is two readers building
        the same component once each.
        """
        cached = self._component_cache.lookup(shard.sid, shard.generation)
        if cached is not _MISS:
            return cached, self._telemetry.view_hits
        merged = shard.builder.build()
        return (
            self._component_cache.store(shard.sid, merged, shard.generation),
            self._telemetry.view_misses,
        )

    def _global_view(self) -> Tuple[Schema, Counter]:
        """The merged view of everything — disjoint union over shards.

        Outcome accounting: a direct snapshot hit is a *hit*; a view
        reassembled purely from cached component parts is a *partial
        hit*; rebuilding any part makes the request a *miss*.

        The generation is read *before* the shard table is copied, so a
        concurrent commit can only make the assembled view fresher than
        its stamp (a later lookup re-misses; never serves stale).  A
        mid-commit copy can briefly hold both a merged shard and one it
        absorbed — the absorbed content is a subset of the merge (the
        join is an upper bound), so the union is unchanged.
        """
        tel = self._telemetry
        generation = self._generation
        cached = self._snapshot_cache.lookup(("view", None), generation)
        if cached is not _MISS:
            return cached, tel.view_hits
        shards = self._shards.copy()
        if not shards:
            merged = Schema.empty()
            outcome = tel.view_misses
        else:
            outcome = tel.view_partial
            parts = []
            for shard in shards.values():
                part, part_outcome = self._component_schema(shard)
                if part_outcome is tel.view_misses:
                    outcome = tel.view_misses
                parts.append(part)
            classes = frozenset().union(*(p.classes for p in parts))
            arrows = frozenset().union(*(p.arrows for p in parts))
            spec = frozenset().union(*(p.spec for p in parts))
            # Shards are class-disjoint, so the union of their closed
            # components is itself closed — no re-closure needed.
            merged = Schema._from_closed(classes, arrows, spec)
        return (
            self._snapshot_cache.store(("view", None), merged, generation),
            outcome,
        )

    def merged_view(self, component: Optional[ComponentRef] = None) -> Schema:
        """The merged schema of one component, or of the whole registry.

        *component* may be a class name (the component containing it), a
        shard id from :meth:`components`, or ``None`` for the disjoint
        union of every component's merge — which equals the cold-path
        ``join_all`` over all registered schemas.  Never blocks behind a
        writer: answers come from the latest published snapshot.
        """
        self._check_open()
        self._requests = requests = next(self._ticker)
        if (requests & self._sample_mask) == self._sample_on:
            return self._merged_view_sampled(component)
        if component is None:
            view, outcome = self._global_view()
        else:
            view, outcome = self._component_schema(self._resolve(component))
        outcome.inc()
        return view

    def _merged_view_sampled(self, component: Optional[ComponentRef]) -> Schema:
        """The sampled slow path: same answer, plus one clock pair.

        Read paths deliberately record durations only — a span per read
        would cost more than the read itself and blow the 5% budget;
        the span tree lives on the write path (:meth:`register`).
        """
        start = perf_counter()
        if component is None:
            view, outcome = self._global_view()
        else:
            view, outcome = self._component_schema(self._resolve(component))
        self._telemetry.view_duration.observe(perf_counter() - start)
        outcome.inc()
        return view

    def query(self, cls: ClassName | str) -> QueryResult:
        """Everything the merged view asserts about one class name.

        The :class:`~repro.service.api_types.QueryResult` is cached per
        name and stamped with the shard it was derived from;
        registrations in *other* components re-validate it as a partial
        hit instead of recomputing.  Lock-free, like :meth:`merged_view`.
        """
        self._check_open()
        self._requests = requests = next(self._ticker)
        key_name = name(cls)
        if (requests & self._sample_mask) != self._sample_on:
            return self._query(key_name)
        start = perf_counter()
        answer = self._query(key_name)
        self._telemetry.query_duration.observe(perf_counter() - start)
        return answer

    def _query(self, key_name: ClassName) -> QueryResult:
        key = ("query", key_name)
        generation = self._generation

        def still_valid(stamp: Any) -> bool:
            if stamp is None:
                return False
            sid, shard_generation = stamp
            shard = self._shards.get(sid)
            return (
                shard is not None
                and self._class_to_sid.get(key_name) == sid
                and shard.generation == shard_generation
            )

        cached = self._snapshot_cache.lookup(key, generation, still_valid)
        if cached is not _MISS:
            return cached
        shard = self._resolve(key_name)
        merged, _outcome = self._component_schema(shard)
        answer = QueryResult.from_component(
            merged, key_name, shard.sid, len(shard.schemas)
        )
        self._snapshot_cache.store(
            key, answer, generation, stamp=(shard.sid, shard.generation)
        )
        return answer

    def component_snapshot(self, component: ComponentRef) -> ComponentSnapshot:
        """One component's merged view as a serialization-ready value.

        The :class:`~repro.service.snapshots.ComponentSnapshot` carries
        the shard's dense closure *with its id table*, so exporting a
        component (``snapshot.to_dict()`` →
        :func:`repro.io.json_io.snapshot_to_dict`) writes each name once
        and never re-walks the merged schema's object graph.  Cached and
        generation-stamped exactly like :meth:`query`: registrations in
        other components re-validate instead of recomputing.
        """
        self._check_open()
        shard = self._resolve(component)
        key = ("snapshot", shard.sid)
        generation = self._generation

        def still_valid(stamp: Any) -> bool:
            if stamp is None:
                return False
            sid, shard_generation = stamp
            live = self._shards.get(sid)
            return live is not None and live.generation == shard_generation

        cached = self._snapshot_cache.lookup(key, generation, still_valid)
        if cached is not _MISS:
            return cast(ComponentSnapshot, cached)
        merged, _outcome = self._component_schema(shard)
        # Engine-built component views carry their dense state; fall
        # back to re-deriving it from the shard's builder when the view
        # came out of the intern table as a pre-existing eager schema.
        dense = getattr(merged, "_dense", None)
        if dense is None:
            dense = shard.builder.dense_state()
        snapshot = ComponentSnapshot(
            sid=shard.sid,
            generation=shard.generation,
            schemas=len(shard.schemas),
            dense=dense,
        )
        self._snapshot_cache.store(
            key, snapshot, generation, stamp=(shard.sid, shard.generation)
        )
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def component_of(self, cls: ClassName | str) -> Optional[int]:
        """The shard id owning *cls*, or ``None`` if the name is unknown."""
        return self._class_to_sid.get(name(cls))

    def components(self) -> Dict[int, Dict[str, int]]:
        """Per-shard summary: class count, member schemas, last mutation."""
        return {
            shard.sid: {
                "classes": len(shard.builder.classes),
                "schemas": len(shard.schemas),
                "generation": shard.generation,
            }
            for shard in sorted(
                self._shards.copy().values(), key=lambda s: s.sid
            )
        }

    def component_schemas(self, component: ComponentRef) -> Tuple[Schema, ...]:
        """The registered schemas that make up one component."""
        return tuple(self._resolve(component).schemas)

    def service_stats(self) -> Dict[str, Any]:
        """Operational counters: components, generation, cache hit rates.

        The historical dict shape, now read from the registered
        instruments (one source of truth with ``repro.obs``): the
        top-level fields ``components``, ``registered_schemas``,
        ``generation``, ``requests_served`` and the ``component_cache``
        / ``snapshot_cache`` counter blocks keep their pre-telemetry
        keys, and a ``telemetry`` block adds the merged-view outcome
        counters plus whatever latency distributions sampling has
        collected.
        """
        tel = self._telemetry
        with self._topology:
            series = dict(self._series)
            log_seq = self._log_seq
            last_cut_seq = self._last_cut_seq
        return {
            "components": len(self._shards),
            "registered_schemas": tel.schemas.value,
            "generation": self._generation,
            "requests_served": self._requests,
            "storage": {
                "log_seq": log_seq,
                "last_cut_seq": last_cut_seq,
                "named_schemas": len(series),
                "retired_versions": sum(
                    1
                    for versions in series.values()
                    for v in versions
                    if v.retired
                ),
            },
            "component_cache": self._component_cache.stats(),
            "snapshot_cache": self._snapshot_cache.stats(),
            "telemetry": {
                "merged_view": tel.view_counts(),
                "register": {
                    "calls": tel.calls.value,
                    "rollbacks": tel.rollbacks.value,
                    "plan_retries": tel.retries.value,
                },
                "latency": {
                    "merged_view": tel.view_duration.percentiles(),
                    "query": tel.query_duration.percentiles(),
                    "register": tel.register_duration.percentiles(),
                },
            },
        }

    def clear_caches(self) -> None:
        """Drop every cached answer (recomputed on demand; never unsafe)."""
        self._component_cache.clear()
        self._snapshot_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MergeService(schemas={self._telemetry.schemas.value}, "
            f"components={len(self._shards)}, "
            f"generation={self._generation})"
        )
