"""The long-lived merge service: registry, shards, snapshot caches.

:class:`MergeService` turns the one-shot ``join_all`` pipeline into a
registry-and-query engine.  Schemas are registered in batches; each
batch folds into the per-component :class:`~repro.service.shards.Shard`
builders (creating and merging shards as name overlap dictates) and
either commits atomically or rolls back without a trace.  Queries are
answered from generation-stamped snapshot caches
(:mod:`repro.service.snapshots`), so a read-mostly workload costs a
dictionary lookup per request, and a write invalidates only the
component it touches.

All public methods are thread-safe (one reentrant lock; registration
and cache maintenance happen inside it).

>>> from repro.core.schema import Schema
>>> service = MergeService()
>>> service.register([
...     Schema.build(arrows=[("Dog", "owner", "Person")]),
...     Schema.build(arrows=[("Case", "judge", "Court")]),
... ])
{'accepted': 2, 'components': 2, 'generation': 1}
>>> service.merged_view("Dog").has_arrow("Dog", "owner", "Person")
True
>>> service.register([Schema.build(arrows=[("Person", "argues", "Case")])])
{'accepted': 1, 'components': 1, 'generation': 2}
>>> service.query("Dog")["component"] == service.query("Court")["component"]
True
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.names import ClassName, name
from repro.core.schema import Schema
from repro.perf.closure import ClosureBuilder
from repro.service.shards import Shard, plan_groups
from repro.service.snapshots import SnapshotCache

__all__ = ["MergeService"]

_MISS = SnapshotCache.MISS

ComponentRef = Union[int, ClassName, str]


class MergeService:
    """A thread-safe registry of schemas serving merged views and queries.

    *component_cache_size* bounds the per-shard merged-schema cache,
    *snapshot_cache_size* the request-level answer cache; both are pure
    memory ceilings — eviction costs a recomputation, never correctness.
    """

    def __init__(
        self,
        schemas: Iterable[Schema] = (),
        *,
        component_cache_size: int = 4096,
        snapshot_cache_size: int = 256,
    ):
        self._lock = threading.RLock()
        self._shards: Dict[int, Shard] = {}
        self._class_to_sid: Dict[ClassName, int] = {}
        self._next_sid = 0
        self._generation = 0
        self._registered = 0
        self._requests = 0
        self._component_cache = SnapshotCache(
            "service.components", maxsize=component_cache_size
        )
        self._snapshot_cache = SnapshotCache(
            "service.snapshots", maxsize=snapshot_cache_size
        )
        initial = list(schemas)
        if initial:
            self.register(initial)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, schemas: Iterable[Schema]) -> Dict[str, int]:
        """Fold a batch of schemas into the registry — atomically.

        The whole batch is applied to *clones* of the touched shards'
        builders first; only if every schema folds in cleanly is the new
        layout swapped in (one generation bump for the batch).  On
        :class:`~repro.exceptions.IncompatibleSchemasError` nothing is
        committed: shard layout, generation and every cached answer are
        exactly as before the call.

        Returns ``{"accepted", "components", "generation"}``.
        """
        incoming = list(schemas)
        # Empty schemas assert nothing and belong to no component.
        batch = [g for g in incoming if not g.is_empty()]
        with self._lock:
            if not batch:
                return {
                    "accepted": len(incoming),
                    "components": len(self._shards),
                    "generation": self._generation,
                }
            plans = plan_groups(batch, self._class_to_sid)
            staged: List[Tuple[int, ClosureBuilder, List[Schema], List[int]]] = []
            next_sid = self._next_sid
            for existing_sids, batch_indices in plans:
                absorbed = sorted(existing_sids)
                if absorbed:
                    # Grow the largest member in place (on a clone) and
                    # fold the others' schemas into it.
                    primary = max(
                        absorbed, key=lambda sid: len(self._shards[sid].schemas)
                    )
                    builder = self._shards[primary].builder.clone()
                    members = list(self._shards[primary].schemas)
                    for sid in absorbed:
                        if sid == primary:
                            continue
                        for schema in self._shards[sid].schemas:
                            builder.add_schema(schema)
                            members.append(schema)
                    sid_for_group = min(absorbed)
                else:
                    builder = ClosureBuilder()
                    members = []
                    sid_for_group = next_sid
                    next_sid += 1
                for index in batch_indices:
                    builder.add_schema(batch[index])
                    members.append(batch[index])
                staged.append((sid_for_group, builder, members, absorbed))
            # Every fold succeeded: commit.
            self._generation += 1
            generation = self._generation
            self._next_sid = next_sid
            for sid, builder, members, absorbed in staged:
                for old_sid in absorbed:
                    del self._shards[old_sid]
                self._shards[sid] = Shard(sid, builder, members, generation)
                for cls in builder.classes:
                    self._class_to_sid[cls] = sid
            self._registered += len(batch)
            return {
                "accepted": len(incoming),
                "components": len(self._shards),
                "generation": generation,
            }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _resolve_sid(self, component: ComponentRef) -> int:
        if isinstance(component, int):
            if component not in self._shards:
                raise KeyError(f"unknown component id {component!r}")
            return component
        cls = name(component)
        try:
            return self._class_to_sid[cls]
        except KeyError:
            raise KeyError(f"no registered schema mentions class {cls}") from None

    def _component_schema(self, sid: int) -> Schema:
        """The merged view of one shard, through the component cache."""
        shard = self._shards[sid]
        cached = self._component_cache.lookup(sid, shard.generation)
        if cached is not _MISS:
            return cached
        merged = shard.builder.build()
        return self._component_cache.store(sid, merged, shard.generation)

    def _global_view(self) -> Schema:
        """The merged view of everything — disjoint union over shards."""
        cached = self._snapshot_cache.lookup(("view", None), self._generation)
        if cached is not _MISS:
            return cached
        if not self._shards:
            merged = Schema.empty()
        else:
            parts = [self._component_schema(sid) for sid in self._shards]
            classes = frozenset().union(*(p.classes for p in parts))
            arrows = frozenset().union(*(p.arrows for p in parts))
            spec = frozenset().union(*(p.spec for p in parts))
            # Shards are class-disjoint, so the union of their closed
            # components is itself closed — no re-closure needed.
            merged = Schema._from_closed(classes, arrows, spec)
        return self._snapshot_cache.store(
            ("view", None), merged, self._generation
        )

    def merged_view(self, component: Optional[ComponentRef] = None) -> Schema:
        """The merged schema of one component, or of the whole registry.

        *component* may be a class name (the component containing it), a
        shard id from :meth:`components`, or ``None`` for the disjoint
        union of every component's merge — which equals the cold-path
        ``join_all`` over all registered schemas.
        """
        with self._lock:
            self._requests += 1
            if component is None:
                return self._global_view()
            return self._component_schema(self._resolve_sid(component))

    def query(self, cls: ClassName | str) -> Dict[str, Any]:
        """Everything the merged view asserts about one class name.

        The answer is cached per name and stamped with the shard it was
        derived from; registrations in *other* components re-validate it
        as a partial hit instead of recomputing.
        """
        with self._lock:
            self._requests += 1
            key_name = name(cls)
            key = ("query", key_name)

            def still_valid(stamp: Any) -> bool:
                if stamp is None:
                    return False
                sid, shard_generation = stamp
                shard = self._shards.get(sid)
                return (
                    shard is not None
                    and self._class_to_sid.get(key_name) == sid
                    and shard.generation == shard_generation
                )

            cached = self._snapshot_cache.lookup(
                key, self._generation, still_valid
            )
            if cached is not _MISS:
                return dict(cached)
            sid = self._resolve_sid(key_name)
            shard = self._shards[sid]
            merged = self._component_schema(sid)
            answer: Dict[str, Any] = {
                "class": str(key_name),
                "component": sid,
                "component_schemas": len(shard.schemas),
                "generalizations": tuple(
                    sorted(
                        str(c)
                        for c in merged.generalizations_of(key_name)
                        if c != key_name
                    )
                ),
                "specializations": tuple(
                    sorted(
                        str(c)
                        for c in merged.specializations_of(key_name)
                        if c != key_name
                    )
                ),
                "arrows_out": tuple(
                    sorted(
                        (label, str(target))
                        for _s, label, target in merged.arrows_from(key_name)
                    )
                ),
                "arrows_in": tuple(
                    sorted(
                        (str(source), label)
                        for source, label, _t in merged.arrows_into(key_name)
                    )
                ),
            }
            self._snapshot_cache.store(
                key, answer, self._generation, stamp=(sid, shard.generation)
            )
            return dict(answer)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def component_of(self, cls: ClassName | str) -> Optional[int]:
        """The shard id owning *cls*, or ``None`` if the name is unknown."""
        with self._lock:
            return self._class_to_sid.get(name(cls))

    def components(self) -> Dict[int, Dict[str, int]]:
        """Per-shard summary: class count, member schemas, last mutation."""
        with self._lock:
            return {
                sid: {
                    "classes": len(shard.builder.classes),
                    "schemas": len(shard.schemas),
                    "generation": shard.generation,
                }
                for sid, shard in sorted(self._shards.items())
            }

    def component_schemas(self, component: ComponentRef) -> Tuple[Schema, ...]:
        """The registered schemas that make up one component."""
        with self._lock:
            return tuple(self._shards[self._resolve_sid(component)].schemas)

    def service_stats(self) -> Dict[str, Any]:
        """Operational counters: components, generation, cache hit rates.

        Fields: ``components``, ``registered_schemas``, ``generation``
        (bumped once per committed register batch), ``requests_served``
        (``merged_view`` + ``query`` calls, cached or not), and the
        ``component_cache`` / ``snapshot_cache`` counter blocks
        (``size``/``maxsize``/``hits``/``misses``/``partial_hits``).
        """
        with self._lock:
            return {
                "components": len(self._shards),
                "registered_schemas": self._registered,
                "generation": self._generation,
                "requests_served": self._requests,
                "component_cache": self._component_cache.stats(),
                "snapshot_cache": self._snapshot_cache.stats(),
            }

    def clear_caches(self) -> None:
        """Drop every cached answer (recomputed on demand; never unsafe)."""
        with self._lock:
            self._component_cache.clear()
            self._snapshot_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        with self._lock:
            return (
                f"MergeService(schemas={self._registered}, "
                f"components={len(self._shards)}, "
                f"generation={self._generation})"
            )
