"""The long-lived merge service: registry, shards, snapshot caches.

:class:`MergeService` turns the one-shot ``join_all`` pipeline into a
registry-and-query engine.  Schemas are registered in batches; each
batch folds into the per-component :class:`~repro.service.shards.Shard`
builders (creating and merging shards as name overlap dictates) and
either commits atomically or rolls back without a trace.  Queries are
answered from generation-stamped snapshot caches
(:mod:`repro.service.snapshots`), so a read-mostly workload costs a
dictionary lookup per request, and a write invalidates only the
component it touches.

All public methods are thread-safe (one reentrant lock; registration
and cache maintenance happen inside it).

**Telemetry.** Every instance reports into the global
:data:`repro.obs.metrics.REGISTRY` (last-wins, so the registry always
describes the newest service): ``service.register.{calls,schemas,
rollbacks,duration}``, ``service.merged_view.{hits,partial_hits,misses,
duration}``, ``service.query.duration``, plus ``service.components`` /
``service.generation`` / ``service.requests`` callback gauges.
Counters are always live; spans and duration histograms engage only
after :func:`repro.obs.enable`, and the read paths *sample* their
timing 1-in-``telemetry_sample_every`` requests.  The sample test is a
phase compare — ``(requests & mask) == phase`` where the phase is
unreachable while telemetry is off — so the disabled hot path executes
the very same instructions and the enabled-mode overhead on a warm
``merged_view`` is just the occasional sampled clock pair (measured
well under the 5% budget by ``benchmarks/bench_obs_overhead.py``).

>>> from repro.core.schema import Schema
>>> service = MergeService()
>>> service.register([
...     Schema.build(arrows=[("Dog", "owner", "Person")]),
...     Schema.build(arrows=[("Case", "judge", "Court")]),
... ])
{'accepted': 2, 'components': 2, 'generation': 1}
>>> service.merged_view("Dog").has_arrow("Dog", "owner", "Person")
True
>>> service.register([Schema.build(arrows=[("Person", "argues", "Case")])])
{'accepted': 1, 'components': 1, 'generation': 2}
>>> service.query("Dog")["component"] == service.query("Court")["component"]
True
>>> stats = service.service_stats()
>>> stats["registered_schemas"], stats["requests_served"]
(3, 3)
"""

from __future__ import annotations

import threading
import weakref
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.names import ClassName, name
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError
from repro.obs import _state as _obs_state
from repro.obs.metrics import Counter, Gauge, Histogram, REGISTRY
from repro.obs.tracing import span
from repro.perf.closure import ClosureBuilder
from repro.service.shards import Shard, plan_groups
from repro.service.snapshots import SnapshotCache

__all__ = ["MergeService"]

_MISS = SnapshotCache.MISS

ComponentRef = Union[int, ClassName, str]


class _ServiceTelemetry:
    """One service's instrument bundle, registered last-wins.

    Counters and histograms are owned per instance (a fresh service
    starts its telemetry from zero and replaces its predecessor in the
    global registry); the gauges read the live service through a weak
    reference so telemetry never keeps a dead service alive.
    """

    __slots__ = (
        "calls",
        "schemas",
        "rollbacks",
        "register_duration",
        "view_hits",
        "view_partial",
        "view_misses",
        "view_duration",
        "query_duration",
        "gauges",
    )

    def __init__(self, service: "MergeService"):
        self.calls = REGISTRY.register(Counter("service.register.calls"))
        self.schemas = REGISTRY.register(Counter("service.register.schemas"))
        self.rollbacks = REGISTRY.register(
            Counter("service.register.rollbacks")
        )
        self.register_duration = REGISTRY.register(
            Histogram("service.register.duration")
        )
        self.view_hits = REGISTRY.register(
            Counter("service.merged_view.hits")
        )
        self.view_partial = REGISTRY.register(
            Counter("service.merged_view.partial_hits")
        )
        self.view_misses = REGISTRY.register(
            Counter("service.merged_view.misses")
        )
        self.view_duration = REGISTRY.register(
            Histogram("service.merged_view.duration")
        )
        self.query_duration = REGISTRY.register(
            Histogram("service.query.duration")
        )
        ref = weakref.ref(service)

        def _reader(attr):
            def read():
                svc = ref()
                return getattr(svc, attr) if svc is not None else 0

            return read

        def _components():
            svc = ref()
            return len(svc._shards) if svc is not None else 0

        self.gauges = [
            REGISTRY.register(Gauge("service.components", fn=_components)),
            REGISTRY.register(
                Gauge("service.generation", fn=_reader("_generation"))
            ),
            REGISTRY.register(
                Gauge("service.requests", fn=_reader("_requests"))
            ),
        ]

    def view_counts(self) -> Dict[str, int]:
        return {
            "hits": self.view_hits.value,
            "partial_hits": self.view_partial.value,
            "misses": self.view_misses.value,
        }


#: Live services, so flipping the global telemetry switch re-phases
#: every instance's read-path sampling in one pass.
_SERVICES: "weakref.WeakSet[MergeService]" = weakref.WeakSet()


def _sync_sampling(enabled: bool) -> None:
    for service in list(_SERVICES):
        service._sample_on = 0 if enabled else service._sample_mask + 1


_obs_state.subscribe(_sync_sampling)


class MergeService:
    """A thread-safe registry of schemas serving merged views and queries.

    *component_cache_size* bounds the per-shard merged-schema cache,
    *snapshot_cache_size* the request-level answer cache; both are pure
    memory ceilings — eviction costs a recomputation, never correctness.
    *telemetry_sample_every* (a power of two) sets how often the read
    paths time themselves while telemetry is enabled: the default 64
    keeps the warm-path overhead negligible; benchmarks pass 1 for full
    latency distributions.
    """

    def __init__(
        self,
        schemas: Iterable[Schema] = (),
        *,
        component_cache_size: int = 4096,
        snapshot_cache_size: int = 256,
        telemetry_sample_every: int = 64,
    ):
        if telemetry_sample_every < 1 or (
            telemetry_sample_every & (telemetry_sample_every - 1)
        ):
            raise ValueError(
                "telemetry_sample_every must be a power of two, got "
                f"{telemetry_sample_every!r}"
            )
        self._lock = threading.RLock()
        self._shards: Dict[int, Shard] = {}
        self._class_to_sid: Dict[ClassName, int] = {}
        self._next_sid = 0
        self._generation = 0
        self._requests = 0
        self._sample_mask = telemetry_sample_every - 1
        # The phase trick: sampling tests `(requests & mask) == _sample_on`.
        # Enabled sets the phase to 0 (1-in-N requests match); disabled
        # sets it past the mask so no request ever matches — the compare
        # itself runs either way, keeping both modes instruction-identical.
        self._sample_on = 0 if _obs_state.enabled else self._sample_mask + 1
        self._component_cache = SnapshotCache(
            "service.components", maxsize=component_cache_size
        )
        self._snapshot_cache = SnapshotCache(
            "service.snapshots", maxsize=snapshot_cache_size
        )
        self._telemetry = _ServiceTelemetry(self)
        _SERVICES.add(self)
        initial = list(schemas)
        if initial:
            self.register(initial)

    @property
    def telemetry(self) -> _ServiceTelemetry:
        """This instance's registered instruments (counters read live)."""
        return self._telemetry

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, schemas: Iterable[Schema]) -> Dict[str, int]:
        """Fold a batch of schemas into the registry — atomically.

        The whole batch is applied to *clones* of the touched shards'
        builders first; only if every schema folds in cleanly is the new
        layout swapped in (one generation bump for the batch).  On
        :class:`~repro.exceptions.IncompatibleSchemasError` nothing is
        committed: shard layout, generation and every cached answer are
        exactly as before the call.

        With telemetry enabled the call produces a span tree —
        ``service.register`` → ``service.plan`` → one
        ``service.rebuild`` per touched component → ``service.snapshot``
        — and its duration lands in ``service.register.duration``.

        Returns ``{"accepted", "components", "generation"}``.
        """
        incoming = list(schemas)
        # Empty schemas assert nothing and belong to no component.
        batch = [g for g in incoming if not g.is_empty()]
        tel = self._telemetry
        with span("service.register", schemas=len(incoming)) as register_span:
            with self._lock:
                tel.calls.inc()
                if not batch:
                    return {
                        "accepted": len(incoming),
                        "components": len(self._shards),
                        "generation": self._generation,
                    }
                timing = _obs_state.enabled
                start = perf_counter() if timing else 0.0
                with span("service.plan", batch=len(batch)):
                    plans = plan_groups(batch, self._class_to_sid)
                staged: List[
                    Tuple[int, ClosureBuilder, List[Schema], List[int]]
                ] = []
                next_sid = self._next_sid
                try:
                    for existing_sids, batch_indices in plans:
                        absorbed = sorted(existing_sids)
                        if absorbed:
                            sid_for_group = min(absorbed)
                        else:
                            sid_for_group = next_sid
                            next_sid += 1
                        with span(
                            "service.rebuild",
                            component=sid_for_group,
                            schemas=len(batch_indices),
                        ):
                            if absorbed:
                                # Grow the largest member in place (on a
                                # clone) and fold the others' schemas in.
                                primary = max(
                                    absorbed,
                                    key=lambda sid: len(
                                        self._shards[sid].schemas
                                    ),
                                )
                                builder = self._shards[primary].builder.clone()
                                members = list(self._shards[primary].schemas)
                                for sid in absorbed:
                                    if sid == primary:
                                        continue
                                    for schema in self._shards[sid].schemas:
                                        builder.add_schema(schema)
                                        members.append(schema)
                            else:
                                builder = ClosureBuilder()
                                members = []
                            for index in batch_indices:
                                builder.add_schema(batch[index])
                                members.append(batch[index])
                        staged.append(
                            (sid_for_group, builder, members, absorbed)
                        )
                except IncompatibleSchemasError:
                    tel.rollbacks.inc()
                    register_span.set(rolled_back=True)
                    raise
                # Every fold succeeded: commit.
                self._generation += 1
                generation = self._generation
                self._next_sid = next_sid
                with span("service.snapshot", generation=generation):
                    for sid, builder, members, absorbed in staged:
                        for old_sid in absorbed:
                            del self._shards[old_sid]
                        self._shards[sid] = Shard(
                            sid, builder, members, generation
                        )
                        for cls in builder.classes:
                            self._class_to_sid[cls] = sid
                tel.schemas.inc(len(batch))
                if timing:
                    tel.register_duration.observe(perf_counter() - start)
                register_span.set(
                    components=len(self._shards), generation=generation
                )
                return {
                    "accepted": len(incoming),
                    "components": len(self._shards),
                    "generation": generation,
                }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _resolve_sid(self, component: ComponentRef) -> int:
        if isinstance(component, int):
            if component not in self._shards:
                raise KeyError(f"unknown component id {component!r}")
            return component
        cls = name(component)
        try:
            return self._class_to_sid[cls]
        except KeyError:
            raise KeyError(f"no registered schema mentions class {cls}") from None

    def _component_schema(self, sid: int) -> Tuple[Schema, Counter]:
        """One shard's merged view, plus the outcome counter it earned.

        The outcome (``service.merged_view.hits`` or ``.misses``) is
        returned un-incremented: only the public entry point counts, so
        a global view assembled from many component lookups still
        registers as a single request.
        """
        shard = self._shards[sid]
        cached = self._component_cache.lookup(sid, shard.generation)
        if cached is not _MISS:
            return cached, self._telemetry.view_hits
        merged = shard.builder.build()
        return (
            self._component_cache.store(sid, merged, shard.generation),
            self._telemetry.view_misses,
        )

    def _global_view(self) -> Tuple[Schema, Counter]:
        """The merged view of everything — disjoint union over shards.

        Outcome accounting: a direct snapshot hit is a *hit*; a view
        reassembled purely from cached component parts is a *partial
        hit*; rebuilding any part makes the request a *miss*.
        """
        tel = self._telemetry
        cached = self._snapshot_cache.lookup(("view", None), self._generation)
        if cached is not _MISS:
            return cached, tel.view_hits
        if not self._shards:
            merged = Schema.empty()
            outcome = tel.view_misses
        else:
            outcome = tel.view_partial
            parts = []
            for sid in self._shards:
                part, part_outcome = self._component_schema(sid)
                if part_outcome is tel.view_misses:
                    outcome = tel.view_misses
                parts.append(part)
            classes = frozenset().union(*(p.classes for p in parts))
            arrows = frozenset().union(*(p.arrows for p in parts))
            spec = frozenset().union(*(p.spec for p in parts))
            # Shards are class-disjoint, so the union of their closed
            # components is itself closed — no re-closure needed.
            merged = Schema._from_closed(classes, arrows, spec)
        return (
            self._snapshot_cache.store(("view", None), merged, self._generation),
            outcome,
        )

    def merged_view(self, component: Optional[ComponentRef] = None) -> Schema:
        """The merged schema of one component, or of the whole registry.

        *component* may be a class name (the component containing it), a
        shard id from :meth:`components`, or ``None`` for the disjoint
        union of every component's merge — which equals the cold-path
        ``join_all`` over all registered schemas.
        """
        with self._lock:
            self._requests = requests = self._requests + 1
            if (requests & self._sample_mask) == self._sample_on:
                return self._merged_view_sampled(component)
            if component is None:
                view, outcome = self._global_view()
            else:
                view, outcome = self._component_schema(
                    self._resolve_sid(component)
                )
            outcome.inc()
            return view

    def _merged_view_sampled(self, component: Optional[ComponentRef]) -> Schema:
        """The sampled slow path: same answer, plus one clock pair.

        Read paths deliberately record durations only — a span per read
        would cost more than the read itself and blow the 5% budget;
        the span tree lives on the write path (:meth:`register`).
        """
        start = perf_counter()
        if component is None:
            view, outcome = self._global_view()
        else:
            view, outcome = self._component_schema(
                self._resolve_sid(component)
            )
        self._telemetry.view_duration.observe(perf_counter() - start)
        outcome.inc()
        return view

    def query(self, cls: ClassName | str) -> Dict[str, Any]:
        """Everything the merged view asserts about one class name.

        The answer is cached per name and stamped with the shard it was
        derived from; registrations in *other* components re-validate it
        as a partial hit instead of recomputing.
        """
        with self._lock:
            self._requests = requests = self._requests + 1
            key_name = name(cls)
            if (requests & self._sample_mask) != self._sample_on:
                return self._query_locked(key_name)
            start = perf_counter()
            answer = self._query_locked(key_name)
            self._telemetry.query_duration.observe(perf_counter() - start)
            return answer

    def _query_locked(self, key_name: ClassName) -> Dict[str, Any]:
        key = ("query", key_name)

        def still_valid(stamp: Any) -> bool:
            if stamp is None:
                return False
            sid, shard_generation = stamp
            shard = self._shards.get(sid)
            return (
                shard is not None
                and self._class_to_sid.get(key_name) == sid
                and shard.generation == shard_generation
            )

        cached = self._snapshot_cache.lookup(
            key, self._generation, still_valid
        )
        if cached is not _MISS:
            return dict(cached)
        sid = self._resolve_sid(key_name)
        shard = self._shards[sid]
        merged, _outcome = self._component_schema(sid)
        answer: Dict[str, Any] = {
            "class": str(key_name),
            "component": sid,
            "component_schemas": len(shard.schemas),
            "generalizations": tuple(
                sorted(
                    str(c)
                    for c in merged.generalizations_of(key_name)
                    if c != key_name
                )
            ),
            "specializations": tuple(
                sorted(
                    str(c)
                    for c in merged.specializations_of(key_name)
                    if c != key_name
                )
            ),
            "arrows_out": tuple(
                sorted(
                    (label, str(target))
                    for _s, label, target in merged.arrows_from(key_name)
                )
            ),
            "arrows_in": tuple(
                sorted(
                    (str(source), label)
                    for source, label, _t in merged.arrows_into(key_name)
                )
            ),
        }
        self._snapshot_cache.store(
            key, answer, self._generation, stamp=(sid, shard.generation)
        )
        return dict(answer)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def component_of(self, cls: ClassName | str) -> Optional[int]:
        """The shard id owning *cls*, or ``None`` if the name is unknown."""
        with self._lock:
            return self._class_to_sid.get(name(cls))

    def components(self) -> Dict[int, Dict[str, int]]:
        """Per-shard summary: class count, member schemas, last mutation."""
        with self._lock:
            return {
                sid: {
                    "classes": len(shard.builder.classes),
                    "schemas": len(shard.schemas),
                    "generation": shard.generation,
                }
                for sid, shard in sorted(self._shards.items())
            }

    def component_schemas(self, component: ComponentRef) -> Tuple[Schema, ...]:
        """The registered schemas that make up one component."""
        with self._lock:
            return tuple(self._shards[self._resolve_sid(component)].schemas)

    def service_stats(self) -> Dict[str, Any]:
        """Operational counters: components, generation, cache hit rates.

        The historical dict shape, now read from the registered
        instruments (one source of truth with ``repro.obs``): the
        top-level fields ``components``, ``registered_schemas``,
        ``generation``, ``requests_served`` and the ``component_cache``
        / ``snapshot_cache`` counter blocks keep their pre-telemetry
        keys, and a ``telemetry`` block adds the merged-view outcome
        counters plus whatever latency distributions sampling has
        collected.
        """
        tel = self._telemetry
        with self._lock:
            return {
                "components": len(self._shards),
                "registered_schemas": tel.schemas.value,
                "generation": self._generation,
                "requests_served": self._requests,
                "component_cache": self._component_cache.stats(),
                "snapshot_cache": self._snapshot_cache.stats(),
                "telemetry": {
                    "merged_view": tel.view_counts(),
                    "register": {
                        "calls": tel.calls.value,
                        "rollbacks": tel.rollbacks.value,
                    },
                    "latency": {
                        "merged_view": tel.view_duration.percentiles(),
                        "query": tel.query_duration.percentiles(),
                        "register": tel.register_duration.percentiles(),
                    },
                },
            }

    def clear_caches(self) -> None:
        """Drop every cached answer (recomputed on demand; never unsafe)."""
        with self._lock:
            self._component_cache.clear()
            self._snapshot_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        with self._lock:
            return (
                f"MergeService(schemas={self._telemetry.schemas.value}, "
                f"components={len(self._shards)}, "
                f"generation={self._generation})"
            )
