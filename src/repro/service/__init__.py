"""repro.service — the long-lived merge service.

The core algebra answers "what is the merge of these schemas?" once;
a system serving merged views to many users has to answer it millions
of times while schemas keep arriving.  This layer keeps the expensive
part — closure over all registered schemas — *incrementally maintained
across requests* instead of recomputed per call:

* **registry** (:class:`MergeService.register`) — batches of schemas
  fold into per-component :class:`repro.perf.ClosureBuilder`\\ s and
  commit atomically, rolling back without a trace when a batch member
  is incompatible;
* **component sharding** (:mod:`repro.service.shards`) — a union-find
  over class-name overlap splits the registry into components that
  merge independently, so an incoming schema only touches (and only
  invalidates) its own component — and, since the shards lock
  independently too, writers on disjoint components run concurrently
  while readers never lock at all (see :mod:`repro.service.service`);
* **snapshot caches** (:mod:`repro.service.snapshots`) —
  ``merged_view`` and ``query`` answers are stamped with a monotone
  generation counter and revalidated per shard, including partial-hit
  reuse when only *other* shards changed;
* **typed results** (:mod:`repro.service.api_types`) — ``register``
  returns a :class:`RegisterReceipt`, ``query`` a :class:`QueryResult`,
  ``retire`` a :class:`RetireReceipt`; all are frozen, thread-safe to
  share, and still read like the old dicts through a one-release
  deprecation shim;
* **durable storage** (:mod:`repro.service.storage`) — every committed
  batch appends one checksummed record to an append-only log behind a
  pluggable :class:`StorageBackend` (:class:`MemoryBackend` by default,
  :class:`FileBackend` on disk); ``MergeService.open(path)`` restarts
  warm from the latest snapshot plus a log-suffix replay, and named
  :class:`RegistrationEntry` registrations gain versions and a
  retirement lifecycle (see ``docs/PERSISTENCE.md``);
* **HTTP front end** (:mod:`repro.service.http`) — an asyncio server
  exposing the registry as ``POST /v1/schemas`` / ``GET /v1/query/...``
  with a versioned JSON wire format.

``schema-merge serve [--http PORT]`` and ``schema-merge bench`` expose
the service on the command line; ``docs/SERVICE.md`` documents the
architecture.  (:mod:`repro.service.bench` is the internal measurement
driver — import it by module path; it is not part of the public
surface.)

>>> from repro.core.schema import Schema
>>> from repro.service import MergeService
>>> service = MergeService()
>>> service.register([
...     Schema.build(arrows=[("Dog", "owner", "Person")],
...                  spec=[("Puppy", "Dog")]),
...     Schema.build(arrows=[("Case", "judge", "Court")]),
... ])
RegisterReceipt(accepted=2, components=2, generation=1)
>>> service.merged_view("Puppy").has_arrow("Puppy", "owner", "Person")
True
>>> service.query("Person").arrows_in
(('Dog', 'owner'), ('Puppy', 'owner'))
>>> service.service_stats()["components"]
2
"""

from __future__ import annotations

from repro.service.api_types import (
    API_FORMAT,
    QueryResult,
    RegisterReceipt,
    RetireReceipt,
)
from repro.service.http import HttpFrontend, serve_http
from repro.service.service import MergeService
from repro.service.shards import Shard, UnionFind, plan_groups
from repro.service.snapshots import ComponentSnapshot, SnapshotCache
from repro.service.storage import (
    FileBackend,
    MemoryBackend,
    RegistrationEntry,
    StorageBackend,
)

__all__ = [
    "API_FORMAT",
    "ComponentSnapshot",
    "FileBackend",
    "HttpFrontend",
    "MemoryBackend",
    "MergeService",
    "QueryResult",
    "RegisterReceipt",
    "RegistrationEntry",
    "RetireReceipt",
    "Shard",
    "SnapshotCache",
    "StorageBackend",
    "UnionFind",
    "plan_groups",
    "serve_http",
]
