"""Typed results for the public :class:`~repro.service.MergeService` API.

Historically ``register()`` and ``query()`` returned raw dictionaries;
callers indexed them by string key and nothing documented (or froze)
the shape.  This module replaces those with frozen dataclasses —
:class:`RegisterReceipt` and :class:`QueryResult` — that are immutable
(safe to cache and to share across threads without copying), carry the
wire-format version, and still *read* like the old dicts through a
one-release deprecation shim: ``receipt["generation"]`` works but warns;
``receipt.generation`` is the supported spelling.  ``to_dict()`` is the
blessed conversion for JSON serialization and never warns.

>>> receipt = RegisterReceipt(accepted=2, components=2, generation=1)
>>> receipt.generation
1
>>> receipt.to_dict()
{'accepted': 2, 'components': 2, 'generation': 1}
>>> receipt == {"accepted": 2, "components": 2, "generation": 1}
True
>>> import warnings
>>> with warnings.catch_warnings(record=True) as caught:
...     warnings.simplefilter("always")
...     receipt["generation"], caught[0].category.__name__
(1, 'DeprecationWarning')
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.core.names import ClassName
from repro.core.schema import Schema

__all__ = ["API_FORMAT", "RegisterReceipt", "QueryResult", "RetireReceipt"]

#: Version tag stamped on every document the HTTP front end emits.
API_FORMAT = "repro.api/1"


def _warn_dict_access(type_name: str) -> None:
    warnings.warn(
        f"dict-style access on {type_name} is deprecated and will be "
        f"removed next release; use the attribute, or .to_dict() for a "
        f"plain mapping",
        DeprecationWarning,
        stacklevel=3,
    )


class _DictCompat:
    """The deprecation shim: mapping-style reads over a frozen dataclass.

    Subscripting and iteration warn; equality against a mapping is
    silent (it asserts nothing about how the caller will *access* the
    value).  ``to_dict()`` is the supported conversion.
    """

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __getitem__(self, key: str) -> Any:
        _warn_dict_access(type(self).__name__)
        return self.to_dict()[key]

    def keys(self) -> Iterator[str]:
        _warn_dict_access(type(self).__name__)
        return iter(self.to_dict().keys())

    def __iter__(self) -> Iterator[str]:
        _warn_dict_access(type(self).__name__)
        return iter(self.to_dict())

    def __contains__(self, key: object) -> bool:
        return key in self.to_dict()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return all(
                getattr(self, f.name) == getattr(other, f.name)
                for f in fields(self)  # type: ignore[arg-type]
            )
        if isinstance(other, Mapping):
            return self.to_dict() == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(
            tuple(getattr(self, f.name) for f in fields(self))  # type: ignore[arg-type]
        )


@dataclass(frozen=True, eq=False)
class RegisterReceipt(_DictCompat):
    """The outcome of one atomic ``register()`` batch.

    *accepted* counts every schema in the batch (empty schemas are
    accepted but assert nothing), *components* is the number of live
    shards after the commit, *generation* the registry generation the
    batch committed at (unchanged when nothing non-empty was given).
    """

    accepted: int
    components: int
    generation: int

    def to_dict(self) -> Dict[str, int]:
        """The pre-typed-API dict shape (JSON-ready)."""
        return {
            "accepted": self.accepted,
            "components": self.components,
            "generation": self.generation,
        }


@dataclass(frozen=True, eq=False)
class RetireReceipt(_DictCompat):
    """The outcome of one ``retire()`` call.

    *versions* lists the version numbers withdrawn by this call (already
    retired versions never re-appear), *components* the live shard count
    after the owning components were rebuilt, *generation* the registry
    generation the retirement committed at.
    """

    name: str
    versions: Tuple[int, ...]
    components: int
    generation: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready shape (versions as a list)."""
        return {
            "name": self.name,
            "versions": list(self.versions),
            "components": self.components,
            "generation": self.generation,
        }


@dataclass(frozen=True, eq=False)
class QueryResult(_DictCompat):
    """Everything the merged view asserts about one class name.

    All sequence fields are sorted tuples, so two results over the same
    registry state compare equal regardless of construction order, and
    the value is safe to cache without copying.
    """

    class_name: str
    component: int
    component_schemas: int
    generalizations: Tuple[str, ...]
    specializations: Tuple[str, ...]
    arrows_out: Tuple[Tuple[str, str], ...]
    arrows_in: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_component(
        cls,
        merged: Schema,
        key_name: ClassName,
        component: int,
        component_schemas: int,
    ) -> "QueryResult":
        """Derive the answer for *key_name* from its component's merge."""
        return cls(
            class_name=str(key_name),
            component=component,
            component_schemas=component_schemas,
            generalizations=tuple(
                sorted(
                    str(c)
                    for c in merged.generalizations_of(key_name)
                    if c != key_name
                )
            ),
            specializations=tuple(
                sorted(
                    str(c)
                    for c in merged.specializations_of(key_name)
                    if c != key_name
                )
            ),
            arrows_out=tuple(
                sorted(
                    (label, str(target))
                    for _s, label, target in merged.arrows_from(key_name)
                )
            ),
            arrows_in=tuple(
                sorted(
                    (str(source), label)
                    for source, label, _t in merged.arrows_into(key_name)
                )
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The pre-typed-API dict shape (``class`` key included)."""
        return {
            "class": self.class_name,
            "component": self.component,
            "component_schemas": self.component_schemas,
            "generalizations": self.generalizations,
            "specializations": self.specializations,
            "arrows_out": self.arrows_out,
            "arrows_in": self.arrows_in,
        }
