"""Counters, gauges and streaming histograms behind one process registry.

Three instrument kinds, all cheap enough to leave permanently enabled:

* :class:`Counter` — a monotone integer (``inc``).  An increment is one
  attribute add; callers that need exact counts under free threading
  must serialize externally (the merge service increments under its own
  lock).
* :class:`Gauge` — a point-in-time value, either set directly (``set``)
  or computed on read from a callback (``fn=...``).  Callback gauges
  are how existing structures (memo caches, the service registry)
  publish their live state without a write on *their* hot path.
* :class:`Histogram` — a streaming latency distribution over fixed
  log-spaced buckets.  Observations cost a bisect plus two adds and
  **no samples are stored**, yet p50/p95/p99 come out within one bucket
  width (a factor of ``10^(1/buckets_per_decade)``, ~26% relative by
  default) — the classic HDR-histogram trade.

:class:`MetricsRegistry` maps ``(name, labels)`` to instruments.  The
process-global :data:`REGISTRY` is what exporters dump and the CLI
prints; ``register()`` is last-wins so per-instance owners (a fresh
``MergeService``'s caches) replace their predecessor's instruments —
the registry always describes the newest owner of each name.

>>> registry = MetricsRegistry()
>>> registry.counter("demo.requests", shard="a").inc(3)
>>> registry.counter("demo.requests", shard="a").value
3
>>> h = registry.histogram("demo.latency")
>>> for ms in [1, 2, 2, 3, 50]:
...     h.observe(ms / 1000.0)
>>> h.count
5
>>> 0.001 <= h.quantile(0.5) <= 0.004
True
>>> [entry["name"] for entry in registry.snapshot()]
['demo.latency', 'demo.requests']
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer instrument."""

    kind = "counter"

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, **labels: Any) -> None:
        self.name = name
        self.labels = _label_items(labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self._value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Counter({self.name}{dict(self.labels) or ''}={self._value})"


class Gauge:
    """A point-in-time value; callback gauges compute it on read."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], Any]] = None,
        **labels: Any,
    ) -> None:
        self.name = name
        self.labels = _label_items(labels)
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        self._value = value

    @property
    def value(self) -> Any:
        if self._fn is not None:
            return self._fn()
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Gauge({self.name}{dict(self.labels) or ''}={self.value})"


class Histogram:
    """A streaming distribution over fixed log-spaced buckets.

    Bucket upper bounds run geometrically from *lo* to *hi* with
    *buckets_per_decade* per factor of ten; one overflow bucket catches
    everything above *hi* and values at or below *lo* land in the first
    bucket.  ``sum``/``count``/``min``/``max`` are exact; quantiles are
    interpolated within the containing bucket and clamped to the
    observed range, so the relative error is bounded by one bucket
    ratio (``10 ** (1 / buckets_per_decade)``).

    The defaults (100 ns .. 100 s, 10 buckets per decade, 91 buckets)
    cover every duration this codebase measures.

    >>> h = Histogram("doc.example")
    >>> for value in range(1, 101):
    ...     h.observe(value / 1000.0)
    >>> h.count, round(h.sum, 3), h.min, h.max
    (100, 5.05, 0.001, 0.1)
    >>> 0.04 <= h.quantile(0.5) <= 0.06
    True
    >>> h.quantile(0.0) == 0.001 and h.quantile(1.0) == 0.1
    True
    >>> Histogram("doc.empty").quantile(0.5) is None
    True
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "labels",
        "_edges",
        "_counts",
        "count",
        "sum",
        "min",
        "max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        lo: float = 1e-7,
        hi: float = 100.0,
        buckets_per_decade: int = 10,
        **labels: Any,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.name = name
        self.labels = _label_items(labels)
        decades = math.log10(hi / lo)
        n_edges = int(math.ceil(decades * buckets_per_decade)) + 1
        ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._edges = [lo * ratio**i for i in range(n_edges)]  # frozen-after-init
        self._counts = [0] * (n_edges + 1)  # guarded-by: _lock (+1: overflow)
        self.count = 0  # guarded-by: _lock
        self.sum = 0.0  # guarded-by: _lock
        self.min = math.inf  # guarded-by: _lock
        self.max = -math.inf  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation in (thread-safe; nothing is stored)."""
        with self._lock:
            self._counts[bisect_left(self._edges, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """The estimated *q*-quantile (``0 <= q <= 1``), or ``None`` if empty.

        Linear interpolation inside the containing bucket, clamped to
        the exact observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q!r}")
        with self._lock:
            if self.count == 0:
                return None
            if q == 0.0:
                return self.min
            if q == 1.0:
                return self.max
            rank = q * (self.count - 1)
            cumulative = 0
            edges = self._edges
            for index, bucket_count in enumerate(self._counts):
                if bucket_count and cumulative + bucket_count > rank:
                    low = edges[index - 1] if index > 0 else self.min
                    high = edges[index] if index < len(edges) else self.max
                    position = (rank - cumulative + 0.5) / bucket_count
                    estimate = low + position * (high - low)
                    return min(max(estimate, self.min), self.max)
                cumulative += bucket_count
            return self.max  # pragma: no cover - defensive

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard latency trio as a JSON-able dict."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair uses ``math.inf`` as its bound and equals
        ``count``.  Empty buckets are skipped except the terminal one.
        """
        with self._lock:
            out: List[Tuple[float, int]] = []
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if bucket_count and index < len(self._edges):
                    out.append((self._edges[index], cumulative))
            out.append((math.inf, cumulative))
            return out

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            count, total = self.count, self.sum
            observed_min = self.min if count else None
            observed_max = self.max if count else None
        out = {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": count,
            "sum": total,
            "min": observed_min,
            "max": observed_max,
        }
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        with self._lock:
            return f"Histogram({self.name}, count={self.count})"


class MetricsRegistry:
    """``(name, labels)`` → instrument, with get-or-create and last-wins.

    ``counter``/``gauge``/``histogram`` get-or-create shared process
    instruments; ``register`` attaches an externally constructed one,
    *replacing* any previous instrument under the same key — the
    contract per-instance owners (snapshot caches, service telemetry)
    rely on so the registry always reflects the newest instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}  # guarded-by: _lock

    def _get_or_create(
        self, key: Tuple[str, LabelItems], factory: Callable[[], Any]
    ) -> Any:
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = factory()
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_items(labels))
        return self._get_or_create(key, lambda: Counter(name, **labels))

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], Any]] = None,
        **labels: Any,
    ) -> Gauge:
        key = (name, _label_items(labels))
        return self._get_or_create(key, lambda: Gauge(name, fn=fn, **labels))

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_items(labels))
        return self._get_or_create(key, lambda: Histogram(name, **labels))

    def register(self, instrument: Any) -> Any:
        """Attach *instrument* (last-wins on key collision); returns it."""
        with self._lock:
            self._instruments[(instrument.name, instrument.labels)] = instrument
        return instrument

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The registered instrument under this key, or ``None``."""
        with self._lock:
            return self._instruments.get((name, _label_items(labels)))

    def value(self, name: str, **labels: Any) -> Any:
        """Shorthand: the current value of a counter/gauge (or ``None``)."""
        instrument = self.get(name, **labels)
        return None if instrument is None else instrument.value

    def instruments(self) -> List[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            return [
                self._instruments[key] for key in sorted(self._instruments)
            ]

    def snapshot(self) -> List[Dict[str, Any]]:
        """One JSON-able record per instrument (callback gauges read live)."""
        return [instrument.snapshot() for instrument in self.instruments()]

    def clear(self) -> None:
        """Drop every instrument (tests; owners keep their references)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


#: The process-global registry: what exporters dump, the CLI prints and
#: the instrumented layers (service, caches, closure engine) report to.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    """Get-or-create a counter in the global :data:`REGISTRY`."""
    return REGISTRY.counter(name, **labels)


def gauge(
    name: str, fn: Optional[Callable[[], Any]] = None, **labels: Any
) -> Gauge:
    """Get-or-create a gauge in the global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, fn=fn, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """Get-or-create a histogram in the global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, **labels)
