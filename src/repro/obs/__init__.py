"""repro.obs — telemetry for the merge engine and service.

The observability layer the scaling PRs (per-shard locks, HTTP front
ends, worker processes) are debugged and benchmarked with.  Three
cooperating pieces, all dependency-free and core-free (nothing here
imports ``repro.core``, so every layer can report into it):

* **metrics** (:mod:`repro.obs.metrics`) — a process-global
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  streaming histograms (fixed log-spaced buckets: p50/p95/p99 with no
  stored samples).  The instrument catalogue lives in
  ``docs/OBSERVABILITY.md``.
* **tracing** (:mod:`repro.obs.tracing`) — ``span(name, **attrs)``
  context managers with thread-local nesting, so one instrumented
  ``MergeService.register`` yields a parent-linked tree:
  register → plan → per-component rebuild → snapshot.
* **exporters** (:mod:`repro.obs.exporters`) — a JSONL span/event/
  metrics log (rotating file or callback sink) and a Prometheus-style
  text dump; ``schema-merge stats`` / ``schema-merge trace`` are the
  human front ends.

**The global switch.** Telemetry is disabled by default.  Counters are
always live (an integer add; the ``stats()`` compatibility views read
them), but spans and duration histograms only engage after
:func:`enable` — and the instrumented hot read path samples its timing
1-in-N so the enabled-mode overhead on a warm ``merged_view`` stays
under 5% (``benchmarks/bench_obs_overhead.py`` enforces this).

>>> import repro.obs as obs
>>> obs.is_enabled()
False
>>> obs.enable()
>>> obs.tracer().clear()
>>> with obs.span("demo.request", user=42):
...     with obs.span("demo.lookup"):
...         pass
>>> child, root = obs.tracer().spans()[-2:]
>>> child.parent_id == root.span_id and root.attrs["user"] == 42
True
>>> obs.disable()
>>> obs.span("demo.request") is obs.span("demo.other")  # shared no-op
True
>>> obs.registry().counter("demo.hits").inc()            # counters: always on
>>> obs.registry().value("demo.hits")
1
>>> obs.tracer().clear()
"""

from __future__ import annotations

from repro.obs import _state
from repro.obs.exporters import JsonlExporter, parse_jsonl, prometheus_text
from repro.obs.instrument import register_cache_gauges, timed, traced
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from repro.obs.tracing import Span, Tracer, render_spans, span, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "is_enabled",
    "parse_jsonl",
    "prometheus_text",
    "register_cache_gauges",
    "registry",
    "render_spans",
    "span",
    "timed",
    "traced",
    "tracer",
]


def enable() -> None:
    """Turn spans and duration timing on, process-wide."""
    _state.set_enabled(True)


def disable() -> None:
    """Back to the zero-span default (counters keep counting)."""
    _state.set_enabled(False)


def is_enabled() -> bool:
    """Whether spans/durations are currently recorded."""
    return _state.enabled


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return REGISTRY
