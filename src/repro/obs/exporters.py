"""Exporters: JSONL event/span logs and Prometheus-style text dumps.

Two machine formats over the same instruments:

* :class:`JsonlExporter` — one JSON object per line, written to a file
  (with optional size-based rotation) or handed to a callback sink.
  Three record types: ``span`` (attach ``export_span`` as a tracer
  sink), ``event`` (ad-hoc structured log lines) and ``metrics`` (a
  full registry snapshot).  :func:`parse_jsonl` reads any of them back.
* :func:`prometheus_text` — the text exposition format (``# TYPE``
  headers, ``{label="..."}`` series, ``_bucket``/``_sum``/``_count``
  expansions for histograms), for scraping or a human ``repro stats``.

>>> lines = []
>>> exporter = JsonlExporter(lines.append)
>>> registry = MetricsRegistry()
>>> registry.counter("demo.events", kind="doc").inc(3)
>>> exporter.export_event("doc.start", run=1)
>>> exporter.export_metrics(registry)
>>> [record["type"] for record in parse_jsonl(lines)]
['event', 'metrics']
>>> parse_jsonl(lines)[1]["instruments"][0]["value"]
3
>>> print(prometheus_text(registry))
# TYPE demo_events counter
demo_events{kind="doc"} 3
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import REGISTRY, Histogram, MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "JsonlExporter",
    "parse_jsonl",
    "prometheus_text",
]


class JsonlExporter:
    """Write spans, events and metrics snapshots as JSON lines.

    *target* is a path (opened in append mode, created on demand) or a
    callable receiving each serialized line.  With a path target,
    *max_bytes* enables single-backup rotation: when the file grows
    past the bound it is renamed to ``<path>.1`` (replacing any
    previous backup) and a fresh file is started — a crude but
    dependency-free cap on disk use for long-lived services.
    """

    def __init__(
        self,
        target: Union[str, Path, Any],
        max_bytes: Optional[int] = None,
    ) -> None:
        if callable(target):
            self._sink = target
            self._path = None
            self._handle = None
        else:
            self._sink = None
            self._path = Path(target)
            self._handle = self._path.open("a", encoding="utf-8")
        self.max_bytes = max_bytes
        self.lines_written = 0

    def _emit(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True, default=str)
        if self._sink is not None:
            self._sink(line)
        else:
            self._handle.write(line + "\n")
            self._handle.flush()
            if (
                self.max_bytes is not None
                and self._handle.tell() > self.max_bytes
            ):
                self._rotate()
        self.lines_written += 1

    def _rotate(self) -> None:
        self._handle.close()
        os.replace(self._path, f"{self._path}.1")
        self._handle = self._path.open("a", encoding="utf-8")

    def export_span(self, finished: Span) -> None:
        """Serialize one finished span (attach as a tracer sink)."""
        self._emit({"type": "span", **finished.to_dict()})

    def export_event(self, name: str, **fields: Any) -> None:
        """One ad-hoc structured event line."""
        self._emit({"type": "event", "name": name, **fields})

    def export_metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> None:
        """A full snapshot of *registry* (default: the global one)."""
        registry = REGISTRY if registry is None else registry
        self._emit({"type": "metrics", "instruments": registry.snapshot()})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def parse_jsonl(source: Union[str, Path, Iterable[str]]) -> List[Dict[str, Any]]:
    """Read a JSONL telemetry log back into dicts (path or lines).

    Blank lines are skipped; anything else must be valid JSON — the
    exporter wrote it, so a parse error means a truncated or foreign
    file and deserves to surface.
    """
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = list(source)
    return [json.loads(line) for line in lines if line.strip()]


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, Any], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if value is math.inf:
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    registry = REGISTRY if registry is None else registry
    out: List[str] = []
    typed: set = set()
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        labels = dict(instrument.labels)
        # One TYPE header per family: labelled series of the same
        # instrument (e.g. memo_hits{cache=...}) share it.
        if name not in typed:
            typed.add(name)
            out.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for bound, cumulative in instrument.buckets():
                series = _prom_labels(labels, f'le="{_prom_value(bound)}"')
                out.append(f"{name}_bucket{series} {cumulative}")
            out.append(f"{name}_sum{_prom_labels(labels)} {instrument.sum!r}")
            out.append(f"{name}_count{_prom_labels(labels)} {instrument.count}")
        else:
            out.append(
                f"{name}{_prom_labels(labels)} {_prom_value(instrument.value)}"
            )
    return "\n".join(out)
