"""Tracing spans: parent-linked timed regions with thread-local nesting.

:func:`span` is the whole API: a context manager that times a named
region and links it to whatever span is currently open *on the same
thread*, so one instrumented request produces a tree showing exactly
where its time went::

    with span("service.register", schemas=3):
        with span("service.plan"):
            ...
        with span("service.rebuild", component=2):
            ...

Finished spans flow to the process :class:`Tracer`: a bounded ring of
recent spans (for the CLI / REPL) plus fan-out sinks (the JSONL
exporter).  When the global switch (:mod:`repro.obs._state`) is off,
``span()`` returns one shared no-op singleton — **no Span object is
allocated**, which is the disabled-mode guarantee the regression tests
pin down.

>>> from repro.obs import _state
>>> _state.set_enabled(True)
>>> tracer().clear()
>>> with span("doc.parent", job="demo"):
...     with span("doc.child"):
...         pass
>>> child, parent = tracer().spans()[-2:]   # children finish first
>>> (child.name, parent.name, child.parent_id == parent.span_id)
('doc.child', 'doc.parent', True)
>>> child.trace_id == parent.trace_id and parent.parent_id is None
True
>>> _state.set_enabled(False)
>>> span("doc.off") is span("doc.also-off")   # one shared no-op handle
True
>>> tracer().clear()
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs import _state

__all__ = ["Span", "Tracer", "render_spans", "span", "tracer"]

_IDS = itertools.count(1)
_STACKS = threading.local()


class Span:
    """One finished (or in-flight) timed region.

    ``start_s``/``end_s`` are ``time.perf_counter`` readings (durations
    only); ``ts`` is the wall-clock epoch second the span started, for
    log correlation.  ``parent_id`` is ``None`` on trace roots.
    """

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "ts",
        "start_s",
        "end_s",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = time.time()
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        duration = self.duration_s
        timing = f"{duration * 1e6:.1f}us" if duration is not None else "open"
        return f"Span({self.name}, {timing})"


class _NullSpan:
    """The shared no-op handle returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Single-use context manager that opens/closes one live span."""

    __slots__ = ("_name", "_attrs", "_span")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        stack = getattr(_STACKS, "spans", None)
        if stack is None:
            stack = _STACKS.spans = []
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(_IDS), None
        self._span = opened = Span(
            self._name, self._attrs, trace_id, next(_IDS), parent_id
        )
        stack.append(opened)
        return opened

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[Any],
    ) -> bool:
        closed = self._span
        assert closed is not None  # __exit__ only runs after __enter__
        closed.end_s = time.perf_counter()
        if exc is not None:
            closed.attrs["error"] = repr(exc)
        stack = _STACKS.spans
        if stack and stack[-1] is closed:
            stack.pop()
        else:  # pragma: no cover - exit order broke; drop defensively
            try:
                stack.remove(closed)
            except ValueError:
                pass
        TRACER._finish(closed)
        return False


def span(name: str, **attrs: Any) -> "_NullSpan | _SpanHandle":
    """Open a timed, parent-linked span (no-op singleton when disabled).

    Use as a context manager; the entered value is the live
    :class:`Span` (attach attributes with ``.set``) or the shared
    null handle when telemetry is off.
    """
    if not _state.enabled:
        return _NULL_SPAN
    return _SpanHandle(name, attrs)


class Tracer:
    """Collects finished spans: a bounded ring plus fan-out sinks."""

    def __init__(self, capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._recent: "deque[Span]" = deque(maxlen=capacity)
        self._sinks: List[Callable[[Span], Any]] = []
        self.dropped_sink_errors = 0

    def _finish(self, finished: Span) -> None:
        with self._lock:
            self._recent.append(finished)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(finished)
            except Exception:  # noqa: BLE001 - a broken sink must not
                self.dropped_sink_errors += 1  # break the traced code

    def add_sink(self, sink: Callable[[Span], Any]) -> None:
        """Register a callable receiving every finished :class:`Span`."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Span], Any]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def spans(self) -> List[Span]:
        """The retained recent spans, oldest first."""
        with self._lock:
            return list(self._recent)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global :class:`Tracer`."""
    return TRACER


def render_spans(spans: Iterable[Span]) -> str:
    """Render finished spans as indented per-trace trees.

    Orphans (parents evicted from the ring) are shown as roots; spans
    are ordered by start time within each level.
    """
    pool = list(spans)
    by_parent: Dict[Optional[int], List[Span]] = {}
    ids = {entry.span_id for entry in pool}
    for entry in pool:
        parent = entry.parent_id if entry.parent_id in ids else None
        by_parent.setdefault(parent, []).append(entry)
    lines: List[str] = []

    def walk(parent_id: Optional[int], depth: int) -> None:
        for entry in sorted(
            by_parent.get(parent_id, []), key=lambda s: s.start_s
        ):
            duration = entry.duration_s
            timing = (
                f"{duration * 1e3:.3f} ms" if duration is not None else "open"
            )
            attrs = "".join(
                f" {key}={value!r}" for key, value in sorted(entry.attrs.items())
            )
            lines.append(f"{'  ' * depth}{entry.name}  {timing}{attrs}")
            walk(entry.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)
