"""The process-global telemetry switch.

One boolean, read on hot paths (``_state.enabled``) and flipped through
:func:`set_enabled` so that subscribers — code that pre-computes a
derived value from the switch, like the merge service's sampling phase
— are notified on every transition.  The switch gates *allocation-
bearing* telemetry only (tracing spans, duration timing); plain
counters are always live because they cost an integer increment and
the compatibility ``stats()`` views depend on them.

Kept in its own tiny module (rather than ``repro.obs.__init__``) so
:mod:`repro.obs.tracing` can read the flag without importing the
package ``__init__`` it is itself imported by.
"""

from __future__ import annotations

import threading
from typing import Callable, List

__all__ = ["enabled", "set_enabled", "subscribe"]

#: The switch itself.  Read directly on hot paths; write via
#: :func:`set_enabled` only, so subscribers stay in sync.
enabled = False  # guarded-by(writes): _lock

_lock = threading.Lock()
_listeners: List[Callable[[bool], None]] = []  # guarded-by: _lock


def set_enabled(flag: bool) -> None:
    """Flip the global switch and notify every subscriber."""
    global enabled
    with _lock:
        enabled = bool(flag)
        listeners = list(_listeners)
    for listener in listeners:
        listener(enabled)


def subscribe(listener: Callable[[bool], None]) -> Callable[[bool], None]:
    """Register *listener* for switch transitions (called immediately too).

    The immediate call lets subscribers initialise their derived state
    from the current value with no separate bootstrap step.  Listeners
    are module-level functions in practice, so the registry holds
    strong references and is append-only.
    """
    with _lock:
        _listeners.append(listener)
        current = enabled
    listener(current)
    return listener
