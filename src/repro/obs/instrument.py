"""Instrumentation glue: decorators and cache-to-registry bindings.

The pieces that thread telemetry through existing code without that
code growing registry boilerplate:

* :func:`traced` — wrap a function in a :func:`~repro.obs.tracing.span`
  (no-op while the global switch is off);
* :func:`timed` — record a function's duration into a histogram, only
  while telemetry is enabled (the call itself always proceeds);
* :func:`register_cache_gauges` — publish an existing structure's live
  counters as callback gauges, the zero-hot-path-cost way stats-bearing
  caches (:class:`repro.perf.memo.MemoCache`) join the registry.

>>> from repro.obs import _state
>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> @timed("doc.work.duration", registry=registry)
... def work(n):
...     return sum(range(n))
>>> _state.set_enabled(True)
>>> work(100)
4950
>>> registry.get("doc.work.duration").count
1
>>> _state.set_enabled(False)
>>> work(100)   # still runs; just not timed
4950
>>> registry.get("doc.work.duration").count
1
>>> hits = {"hits": 7}
>>> gauges = register_cache_gauges(
...     "doc.cache", "example", {"hits": lambda: hits["hits"]},
...     registry=registry)
>>> registry.value("doc.cache.hits", cache="example")
7
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import _state
from repro.obs.metrics import REGISTRY, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import span

__all__ = ["register_cache_gauges", "timed", "traced"]


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator: run the function inside a span named *name*.

    Defaults to the function's qualified name; static attributes ride
    along on every span.  Costs one no-op context manager while
    telemetry is disabled.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def timed(
    histogram: Any,
    registry: Optional[MetricsRegistry] = None,
) -> Callable:
    """Decorator: observe the call's duration into *histogram*.

    *histogram* is a :class:`~repro.obs.metrics.Histogram` or a name to
    get-or-create in *registry* (default: the global one).  Durations
    are recorded only while the global switch is on; the wrapped call
    itself is never gated.
    """
    if not isinstance(histogram, Histogram):
        registry = REGISTRY if registry is None else registry
        histogram = registry.histogram(histogram)

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _state.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                histogram.observe(time.perf_counter() - start)

        return wrapper

    return decorate


def register_cache_gauges(
    prefix: str,
    cache_name: str,
    fields: Dict[str, Callable[[], Any]],
    registry: Optional[MetricsRegistry] = None,
) -> List[Gauge]:
    """Publish live counters as ``<prefix>.<field>{cache=<name>}`` gauges.

    Each field maps to a callback gauge reading the owner's counter at
    snapshot time, so the owner's hot path never touches the registry.
    Registration is last-wins: re-creating a cache under the same name
    re-points the gauges at the new instance.
    """
    registry = REGISTRY if registry is None else registry
    return [
        registry.register(
            Gauge(f"{prefix}.{field}", fn=reader, cache=cache_name)
        )
        for field, reader in sorted(fields.items())
    ]
