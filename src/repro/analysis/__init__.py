"""Measurement helpers backing the benchmark harness."""
