"""Implicit-class growth curves (the §7 open question, IMPGROWTH).

"We must evaluate how many implicit classes can be introduced in the
merge.  Although in the examples we have looked at this number has been
small, it may be possible to construct pathological examples in which
the number of implicit classes is very large; however, we do not think
these are likely to occur in practice."

:func:`growth_curve` measures ``|Imp|`` across a parameter sweep;
:func:`random_growth` and :func:`adversarial_growth` instantiate it for
the two regimes the sentence distinguishes, giving the benchmark both
halves of the claim to verify.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.implicit import implicit_sets
from repro.core.merge import weak_merge
from repro.core.schema import Schema
from repro.generators.pathological import diamond_chain_schemas, nfa_blowup_pair
from repro.generators.random_schemas import random_schema_family

__all__ = [
    "implicit_count",
    "growth_curve",
    "random_growth",
    "adversarial_growth",
    "diamond_growth",
]


def implicit_count(schemas: Sequence[Schema]) -> int:
    """``|Imp|`` of the weak merge of *schemas*."""
    return len(implicit_sets(weak_merge(*schemas)))


def growth_curve(
    parameters: Sequence[int],
    family: Callable[[int], Sequence[Schema]],
) -> List[Tuple[int, int, int]]:
    """``(parameter, merged input classes, |Imp|)`` along a sweep."""
    rows = []
    for parameter in parameters:
        schemas = list(family(parameter))
        merged = weak_merge(*schemas)
        rows.append(
            (parameter, len(merged.classes), len(implicit_sets(merged)))
        )
    return rows


def random_growth(
    sizes: Sequence[int] = (10, 20, 40, 80),
    seed: int = 7,
) -> List[Tuple[int, int, int]]:
    """Growth on random overlapping view families (the benign regime)."""
    return growth_curve(
        sizes,
        lambda n: random_schema_family(
            n_schemas=3,
            pool_size=2 * n,
            n_classes=n,
            n_labels=max(3, n // 8),
            arrow_density=0.12,
            spec_density=0.08,
            seed=seed,
        ),
    )


def adversarial_growth(
    ks: Sequence[int] = (4, 6, 8, 10),
) -> List[Tuple[int, int, int]]:
    """Growth on the NFA subset-construction adversary (exponential)."""
    return growth_curve(ks, lambda k: nfa_blowup_pair(k))


def diamond_growth(
    ks: Sequence[int] = (4, 8, 16, 32),
) -> List[Tuple[int, int, int]]:
    """Growth on stacked diamonds (exactly linear: ``|Imp| == k``)."""
    return growth_curve(ks, lambda k: diamond_chain_schemas(k))
