"""Merge statistics: the numbers EXPERIMENTS.md reports.

The paper's conclusion raises exactly these quantities — how many
implicit classes merges introduce, how large merged schemas get — so
the analysis layer computes them uniformly for every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.implicit import implicit_classes_of
from repro.core.merge import MergeReport, merge_report
from repro.core.schema import Schema

__all__ = ["MergeStats", "measure_merge", "measure_family"]


@dataclass(frozen=True)
class MergeStats:
    """Size accounting for one merge."""

    input_count: int
    input_classes_total: int
    input_classes_distinct: int
    input_arrows_total: int
    weak_classes: int
    weak_arrows: int
    merged_classes: int
    merged_arrows: int
    implicit_classes: int

    @property
    def implicit_ratio(self) -> float:
        """Implicit classes per distinct input class (the §7 question)."""
        if not self.input_classes_distinct:
            return 0.0
        return self.implicit_classes / self.input_classes_distinct

    def as_row(self) -> Dict[str, object]:
        """A flat dict for tabular printing."""
        return {
            "inputs": self.input_count,
            "in_classes": self.input_classes_distinct,
            "in_arrows": self.input_arrows_total,
            "weak_classes": self.weak_classes,
            "merged_classes": self.merged_classes,
            "merged_arrows": self.merged_arrows,
            "implicit": self.implicit_classes,
            "implicit_ratio": round(self.implicit_ratio, 4),
        }


def measure_merge(report: MergeReport) -> MergeStats:
    """Extract :class:`MergeStats` from a merge report."""
    distinct = set()
    total_classes = 0
    total_arrows = 0
    for schema in report.inputs:
        distinct |= schema.classes
        total_classes += len(schema.classes)
        total_arrows += len(schema.arrows)
    return MergeStats(
        input_count=len(report.inputs),
        input_classes_total=total_classes,
        input_classes_distinct=len(distinct),
        input_arrows_total=total_arrows,
        weak_classes=len(report.weak.classes),
        weak_arrows=len(report.weak.arrows),
        merged_classes=len(report.merged.classes),
        merged_arrows=len(report.merged.arrows),
        implicit_classes=len(implicit_classes_of(report.merged)),
    )


def measure_family(schemas: Sequence[Schema]) -> MergeStats:
    """Merge a family and measure it in one call."""
    return measure_merge(merge_report(*schemas))
