"""One-shot reproduction report: every paper claim, checked and printed.

``python -m repro.analysis.report`` re-derives the qualitative results
of EXPERIMENTS.md in one run (no timing — that is the benchmark
harness's job) and prints a claim-by-claim PASS table.  Each section
function returns its lines and raises ``AssertionError`` on any
deviation, so the module doubles as an executable summary and a smoke
test of the whole reproduction.
"""

from __future__ import annotations

from itertools import permutations
from typing import List

from repro.analysis.growth import (
    adversarial_growth,
    diamond_growth,
    random_growth,
)
from repro.baselines.naive import order_sensitivity
from repro.core.assertions import isa
from repro.core.implicit import implicit_classes_of, properize
from repro.core.keys import KeyFamily, merge_keyed
from repro.core.lower import (
    AnnotatedSchema,
    lower_merge,
)
from repro.core.merge import upper_merge, weak_merge
from repro.core.names import ImplicitName
from repro.core.ordering import is_sub
from repro.core.participation import Participation, glb, lub
from repro.figures import (
    figure1_er_diagram,
    figure2_schema,
    figure3_expected_weak_merge,
    figure3_schemas,
    figure4_schemas,
    figure6_schemas,
    figure7_candidate_g4,
    figure8_expected_weak_merge,
    figure9_advisor_schema,
    figure9_committee_schema,
    figure10_keyed_schema,
)
from repro.models.er import from_schema, to_schema

__all__ = ["full_report", "main"]


def _check(lines: List[str], label: str, condition: bool, detail: str) -> None:
    status = "PASS" if condition else "FAIL"
    lines.append(f"  [{status}] {label}: {detail}")
    assert condition, f"{label}: {detail}"


def report_figures_1_2() -> List[str]:
    """FIG1/FIG2 — ER translation round trip."""
    lines = ["Figures 1-2 (ER translation):"]
    diagram = figure1_er_diagram()
    stratified = to_schema(diagram)
    _check(
        lines,
        "FIG2",
        stratified.schema == figure2_schema(),
        "translation equals the Figure 2 schema",
    )
    _check(
        lines,
        "FIG1",
        from_schema(stratified) == diagram,
        "back-translation recovers Figure 1",
    )
    return lines


def report_figure_3() -> List[str]:
    """FIG3 — the implicit-class merge."""
    lines = ["Figure 3 (implicit classes):"]
    one, two = figure3_schemas()
    _check(
        lines,
        "weak merge",
        weak_merge(one, two) == figure3_expected_weak_merge(),
        "equals the hand-written expansion",
    )
    merged = upper_merge(one, two)
    imp = ImplicitName(["B1", "B2"])
    _check(
        lines,
        "properization",
        imp in merged.classes
        and merged.is_spec(imp, "B1")
        and merged.is_spec(imp, "B2"),
        "introduces <B1&B2> below B1 and B2",
    )
    return lines


def report_figures_4_5() -> List[str]:
    """FIG4/FIG5 — (non-)associativity."""
    lines = ["Figures 4-5 (associativity):"]
    schemas = list(figure4_schemas())
    naive = order_sensitivity(schemas)
    _check(
        lines,
        "naive baseline",
        naive["distinct_results"] >= 2,
        f"{naive['distinct_results']} distinct schemas across "
        f"{naive['permutations']} merge orders (non-associative)",
    )
    ours = {
        upper_merge(*(schemas[i] for i in order))
        for order in permutations(range(3))
    }
    _check(
        lines,
        "our merge",
        len(ours) == 1,
        "1 schema across all 6 merge orders",
    )
    (merged,) = ours
    _check(
        lines,
        "implicit class",
        implicit_classes_of(merged) == {ImplicitName(["D", "E", "F"])},
        "exactly one class below {D, E, F}, as the prose demands",
    )
    return lines


def report_figures_6_to_8() -> List[str]:
    """FIG6/7/8 — the least-upper-bound argument."""
    lines = ["Figures 6-8 (least upper bound):"]
    g1, g2 = figure6_schemas()
    weak = weak_merge(g1, g2)
    _check(
        lines,
        "FIG8",
        weak == figure8_expected_weak_merge(),
        "G1 ⊔ G2 equals the Figure 8 drawing (four a-arrows from F)",
    )
    g3 = properize(weak)
    g4 = figure7_candidate_g4()
    _check(
        lines,
        "FIG7 G3",
        implicit_classes_of(g3) == {ImplicitName(["C", "D"])},
        "the merge adds one implicit class below {C, D}",
    )
    _check(
        lines,
        "FIG7 G4",
        is_sub(weak, g4)
        and len(g4.classes) < len(g3.classes)
        and g4.has_arrow("F", "a", "E")
        and not weak.has_arrow("F", "a", "E"),
        "G4 is a smaller upper bound but asserts F --a--> E, which "
        "neither input stated",
    )
    return lines


def report_figures_9_10() -> List[str]:
    """FIG9/FIG10 — keys."""
    lines = ["Figures 9-10 (keys):"]
    merged = merge_keyed(
        figure9_advisor_schema(),
        figure9_committee_schema(),
        assertions=[isa("Advisor", "Committee")],
    )
    _check(
        lines,
        "FIG9",
        merged.keys_of("Advisor") == KeyFamily.of({"victim"})
        and merged.keys_of("Committee")
        == KeyFamily.of({"faculty", "victim"})
        and merged.keys_of("Advisor").contains_family(
            merged.keys_of("Committee")
        ),
        "SK(Advisor) = {{victim}} ⊇ SK(Committee) = {{faculty, victim}}",
    )
    family = figure10_keyed_schema().keys_of("Transaction")
    roles = ["loc", "at", "card", "amount"]
    from itertools import product

    expressible = []
    for labels in product("1N", repeat=len(roles)):
        keys = [
            set(roles) - {role}
            for role, label in zip(roles, labels)
            if label == "1"
        ] or [set(roles)]
        expressible.append(KeyFamily(keys))
    _check(
        lines,
        "FIG10",
        family not in expressible,
        "the two-key Transaction family is not expressible by any of "
        "the 16 edge labelings",
    )
    return lines


def report_figure_11() -> List[str]:
    """FIG11 — the participation semilattice and lower merges."""
    lines = ["Figure 11 (lower merges):"]
    _check(
        lines,
        "semilattice",
        glb(Participation.ABSENT, Participation.REQUIRED)
        == Participation.OPTIONAL
        and lub(Participation.ABSENT, Participation.REQUIRED) is None,
        "glb(0, 1) = 0/1 and lub(0, 1) does not exist",
    )
    one = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "age", "Int")]
    )
    two = AnnotatedSchema.build(
        arrows=[("Dog", "name", "Str"), ("Dog", "breed", "Breed")]
    )
    merged = lower_merge(one, two)
    _check(
        lines,
        "§6 Dog example",
        merged.participation_of("Dog", "name", "Str")
        == Participation.REQUIRED
        and merged.participation_of("Dog", "age", "Int")
        == Participation.OPTIONAL
        and merged.participation_of("Dog", "breed", "Breed")
        == Participation.OPTIONAL,
        "name stays required; age and breed become optional",
    )
    return lines


def report_growth() -> List[str]:
    """IMPGROWTH — the §7 open question, both directions."""
    lines = ["Implicit-class growth (§7):"]
    diamonds = diamond_growth((4, 8, 16))
    _check(
        lines,
        "linear regime",
        [imp for _k, _c, imp in diamonds] == [4, 8, 16],
        f"stacked diamonds: |Imp| = k exactly ({diamonds})",
    )
    adversarial = adversarial_growth((4, 6, 8))
    _check(
        lines,
        "exponential regime",
        [imp for _k, _c, imp in adversarial] == [15, 63, 255],
        f"NFA adversary: |Imp| = 2^k - 1 exactly ({adversarial})",
    )
    random_rows = random_growth(sizes=(10, 20), seed=7)
    _check(
        lines,
        "random views",
        all(imp < classes**2 for _s, classes, imp in random_rows),
        f"random views stay polynomial ({random_rows})",
    )
    return lines


def full_report() -> str:
    """Run every section and return the combined report text."""
    sections = [
        report_figures_1_2(),
        report_figure_3(),
        report_figures_4_5(),
        report_figures_6_to_8(),
        report_figures_9_10(),
        report_figure_11(),
        report_growth(),
    ]
    lines = [
        "Reproduction report — Theoretical Aspects of Schema Merging "
        "(EDBT '92)",
        "=" * 70,
    ]
    for section in sections:
        lines.extend(section)
        lines.append("")
    lines.append("all claims reproduced")
    return "\n".join(lines)


def main() -> int:
    """CLI entry point: print the report, exit non-zero on deviation."""
    try:
        print(full_report())
    except AssertionError as failure:  # pragma: no cover - failure path
        print(f"REPRODUCTION FAILURE: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
