"""Integration sessions: the designer workflow as a first-class object.

The paper positions its merge inside an *interactive* process
(section 1: "appropriate for the design of interactive programs"):
the designer inspects conflicts, renames, asserts relationships,
merges, inspects, and iterates.  :class:`IntegrationSession` packages
that loop so a whole integration is one reviewable, replayable value —
and because every recorded decision feeds an order-independent merge,
replaying the session with its steps permuted provably yields the same
schema (tested).

Typical use::

    session = IntegrationSession()
    session.add_schema("registry", registry)
    session.add_schema("clinic", clinic)
    session.rename_class("Hound", "Dog", schema="registry")
    session.assert_isa("Service-dog", "Dog")
    print("\\n".join(session.conflict_report()))
    merged = session.merge()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.core.assertions import AssertionSet
from repro.core.consistency import ConsistencyRelation
from repro.core.keys import KeyedSchema, merge_keyed
from repro.core.merge import MergeReport, merge_report
from repro.core.names import ClassName, Label
from repro.core.schema import Schema
from repro.exceptions import SchemaError
from repro.tools.conflicts import conflict_report as _conflict_report
from repro.tools.rename import RenamingPlan

__all__ = ["IntegrationSession"]

NameLike = Union[ClassName, str]


class IntegrationSession:
    """Accumulates schemas and integration decisions, then merges.

    Schemas are registered under names; renamings and assertions are
    recorded (not applied destructively), so :meth:`merge` always
    recomputes from the pristine inputs — editing a decision mid-
    session never leaves stale state behind.
    """

    def __init__(self):
        self._schemas: Dict[str, Schema] = {}
        self._keyed: Dict[str, KeyedSchema] = {}
        self._order: List[str] = []
        self._renamings = RenamingPlan()
        self._assertions = AssertionSet()
        self._consistency: Optional[ConsistencyRelation] = None

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def add_schema(self, schema_name: str, schema: Schema) -> "IntegrationSession":
        """Register a plain schema under *schema_name*; chainable."""
        if schema_name in self._schemas:
            raise SchemaError(f"schema {schema_name!r} already registered")
        self._schemas[schema_name] = schema
        self._order.append(schema_name)
        return self

    def add_keyed_schema(
        self, schema_name: str, keyed: KeyedSchema
    ) -> "IntegrationSession":
        """Register a keyed schema (its keys participate in the merge)."""
        self.add_schema(schema_name, keyed.schema)
        self._keyed[schema_name] = keyed
        return self

    def schema_names(self) -> Tuple[str, ...]:
        """Registered schema names, in registration order."""
        return tuple(self._order)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def rename_class(
        self,
        old: NameLike,
        new: NameLike,
        schema: Optional[str] = None,
    ) -> "IntegrationSession":
        """Record a class renaming, optionally scoped to one schema."""
        scope = self._scope_index(schema)
        self._renamings.rename_class(old, new, schema_index=scope)
        return self

    def rename_label(
        self,
        old: Label,
        new: Label,
        schema: Optional[str] = None,
    ) -> "IntegrationSession":
        """Record an arrow-label renaming."""
        scope = self._scope_index(schema)
        self._renamings.rename_label(old, new, schema_index=scope)
        return self

    def assert_isa(self, sub: NameLike, sup: NameLike) -> "IntegrationSession":
        """Record the inter-schema assertion ``sub ==> sup``."""
        self._assertions.add_isa(sub, sup)
        return self

    def assert_arrow(
        self, source: NameLike, label: Label, target: NameLike
    ) -> "IntegrationSession":
        """Record the assertion ``source --label--> target``."""
        self._assertions.add_arrow(source, label, target)
        return self

    def set_consistency(
        self, relation: ConsistencyRelation
    ) -> "IntegrationSession":
        """Install a consistency relationship vetting implicit classes."""
        self._consistency = relation
        return self

    def _scope_index(self, schema: Optional[str]):
        if schema is None:
            return None
        try:
            return self._order.index(schema)
        except ValueError:
            raise SchemaError(f"no schema named {schema!r}") from None

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------

    def prepared_schemas(self) -> List[Schema]:
        """The inputs with all recorded renamings applied."""
        return self._renamings.apply(
            [self._schemas[n] for n in self._order]
        )

    def conflict_report(self) -> List[str]:
        """The pre-merge conflict report over the prepared schemas."""
        return _conflict_report(self.prepared_schemas())

    def merge(self) -> Schema:
        """Run the upper merge with every recorded decision applied."""
        return self.report().merged

    def report(self) -> MergeReport:
        """The merge with all intermediate artifacts."""
        return merge_report(
            *self.prepared_schemas(),
            assertions=self._assertions,
            consistency=self._consistency,
        )

    def merge_keyed(self) -> KeyedSchema:
        """Run the keyed merge (section 5) over the registered inputs.

        Schemas registered without keys participate with the empty
        assignment.  Renamings of keyed schemas are intentionally not
        supported (keys name labels; renaming both consistently is a
        to-do the constructor guards).
        """
        if len(self._renamings):
            raise SchemaError(
                "keyed sessions do not support renamings yet; apply the "
                "renaming to the keyed schema before registering it"
            )
        inputs = []
        for schema_name in self._order:
            keyed = self._keyed.get(schema_name)
            if keyed is None:
                keyed = KeyedSchema(self._schemas[schema_name], {})
            inputs.append(keyed)
        return merge_keyed(
            *inputs,
            assertions=self._assertions,
            consistency=self._consistency,
        )

    def __repr__(self) -> str:
        return (
            f"IntegrationSession({len(self._order)} schema(s), "
            f"{len(self._renamings)} renaming(s), "
            f"{len(self._assertions)} assertion(s))"
        )
