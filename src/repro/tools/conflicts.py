"""Pre-merge conflict detection (sections 3 and 7).

Section 3: "the designer of the system must be called upon to resolve
naming conflicts, whether homonyms or synonyms, by renaming classes and
arrows where appropriate" — and section 7 adds *structural* conflicts
("an attribute in one schema may look like an entity in another").
This module finds the candidates so the designer only has to decide:

* **homonyms** — same class name used with disjoint arrow signatures in
  different schemas (probably two different real-world notions);
* **synonyms** — differently named classes with near-identical arrow
  signatures (probably the same notion), scored by Jaccard similarity;
* **structural conflicts** — a name used as an arrow label in one
  schema and as a class in another, or a class that is a relationship-
  like hub in one schema and an attribute-like leaf in another;
* **incompatibilities** — specialization cycles that would make the
  merge fail outright, reported with their witness cycle.

Detection is heuristic by design (the paper calls the problem
"inherently ad hoc"); the *resolutions* are not — they are renamings
(:mod:`repro.tools.rename`) and assertions, both of which feed the
order-independent merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.names import ClassName, Label, sort_key
from repro.core.ordering import compatibility_cycle
from repro.core.schema import Schema

__all__ = [
    "Homonym",
    "SynonymCandidate",
    "StructuralConflict",
    "find_homonyms",
    "find_synonyms",
    "find_structural_conflicts",
    "find_incompatibility",
    "conflict_report",
]


def _signature(schema: Schema, cls: ClassName) -> FrozenSet[Label]:
    return schema.out_labels(cls)


@dataclass(frozen=True)
class Homonym:
    """One name, two (apparently) different notions."""

    name: ClassName
    schema_indices: Tuple[int, int]
    signatures: Tuple[FrozenSet[Label], FrozenSet[Label]]

    def describe(self) -> str:
        """Human-readable account of the homonym."""
        i, j = self.schema_indices
        sig_i, sig_j = self.signatures
        return (
            f"{self.name}: schema {i} knows arrows "
            f"{sorted(sig_i) or '[]'}, schema {j} knows "
            f"{sorted(sig_j) or '[]'} (disjoint) — same notion?"
        )


def find_homonyms(schemas: Sequence[Schema]) -> List[Homonym]:
    """Classes sharing a name across schemas with *disjoint* signatures.

    Disjointness of non-empty arrow signatures is the heuristic: if two
    uses of ``Dog`` share not even one attribute, they may well be
    different notions merged by accident.
    """
    found: List[Homonym] = []
    for i, left in enumerate(schemas):
        for j in range(i + 1, len(schemas)):
            right = schemas[j]
            for cls in sorted(left.classes & right.classes, key=sort_key):
                sig_left = _signature(left, cls)
                sig_right = _signature(right, cls)
                if sig_left and sig_right and not (sig_left & sig_right):
                    found.append(
                        Homonym(cls, (i, j), (sig_left, sig_right))
                    )
    return found


@dataclass(frozen=True)
class SynonymCandidate:
    """Two names that look like the same notion."""

    left: ClassName
    right: ClassName
    schema_indices: Tuple[int, int]
    similarity: float

    def describe(self) -> str:
        """Human-readable account of the candidate pair."""
        i, j = self.schema_indices
        return (
            f"{self.left} (schema {i}) ~ {self.right} (schema {j}): "
            f"arrow-signature similarity {self.similarity:.2f} — "
            "rename to unify?"
        )


def find_synonyms(
    schemas: Sequence[Schema], threshold: float = 0.5
) -> List[SynonymCandidate]:
    """Differently-named classes with Jaccard-similar arrow signatures."""
    found: List[SynonymCandidate] = []
    for i, left in enumerate(schemas):
        for j in range(i + 1, len(schemas)):
            right = schemas[j]
            for cls_left in sorted(left.classes - right.classes, key=sort_key):
                sig_left = _signature(left, cls_left)
                if not sig_left:
                    continue
                for cls_right in sorted(
                    right.classes - left.classes, key=sort_key
                ):
                    sig_right = _signature(right, cls_right)
                    if not sig_right:
                        continue
                    union = sig_left | sig_right
                    similarity = len(sig_left & sig_right) / len(union)
                    if similarity >= threshold:
                        found.append(
                            SynonymCandidate(
                                cls_left, cls_right, (i, j), similarity
                            )
                        )
    found.sort(key=lambda c: (-c.similarity, sort_key(c.left)))
    return found


@dataclass(frozen=True)
class StructuralConflict:
    """A name playing structurally different roles across schemas."""

    name: str
    kind: str
    detail: str

    def describe(self) -> str:
        """Human-readable account of the conflict."""
        return f"{self.name} [{self.kind}]: {self.detail}"


def find_structural_conflicts(
    schemas: Sequence[Schema],
) -> List[StructuralConflict]:
    """Names used as arrow labels in one schema and classes in another.

    This is the paper's "an attribute in one schema may look like an
    entity in another" — the merge will not resolve it (it will simply
    present both readings), so flagging it up front saves the designer
    a surprising result.
    """
    found: List[StructuralConflict] = []
    all_labels: Dict[str, int] = {}
    all_class_strings: Dict[str, int] = {}
    for index, schema in enumerate(schemas):
        for label in schema.labels():
            all_labels.setdefault(label, index)
        for cls in schema.classes:
            all_class_strings.setdefault(str(cls), index)
    for text in sorted(set(all_labels) & set(all_class_strings)):
        found.append(
            StructuralConflict(
                text,
                "attribute-vs-class",
                f"used as an arrow label in schema {all_labels[text]} "
                f"but as a class in schema {all_class_strings[text]}",
            )
        )
    return found


def find_incompatibility(schemas: Sequence[Schema]):
    """The witness specialization cycle, or ``None`` when compatible."""
    return compatibility_cycle(list(schemas))


def conflict_report(schemas: Sequence[Schema]) -> List[str]:
    """One-stop pre-merge report: everything a designer should look at."""
    lines: List[str] = []
    cycle = find_incompatibility(schemas)
    if cycle is not None:
        lines.append(
            "INCOMPATIBLE: specialization cycle "
            + " ==> ".join(str(c) for c in cycle)
        )
    for homonym in find_homonyms(schemas):
        lines.append("homonym? " + homonym.describe())
    for synonym in find_synonyms(schemas):
        lines.append("synonym? " + synonym.describe())
    for conflict in find_structural_conflicts(schemas):
        lines.append("structural: " + conflict.describe())
    if not lines:
        lines.append("no conflicts detected")
    return lines
