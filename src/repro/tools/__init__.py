"""Designer-facing tooling: conflict detection, renaming, CLI."""
