"""The command-line merge tool — the reproduction's "prototype".

The paper reports "a prototype implementation, together with a
graphical interface, has been developed"; this CLI exposes the same
workflow over JSON schema files and deterministic text/DOT rendering:

.. code-block:: console

    schema-merge show g1.json                      # render a schema
    schema-merge check g1.json g2.json             # pre-merge conflicts
    schema-merge check --strict src/repro          # invariant analyzers
    schema-merge merge g1.json g2.json -o out.json # upper merge
    schema-merge merge --isa Puppy:Dog g1.json g2.json
    schema-merge lower g1.json g2.json             # lower merge
    schema-merge diff g1.json g2.json              # structural diff
    schema-merge dot merged.json                   # Graphviz output
    schema-merge correspond g1.json g2.json        # §5 key analysis
    schema-merge oo-merge lib1.json lib2.json      # merge class diagrams
    schema-merge fuse --source g1.json:i1.json \
                      --source g2.json:i2.json \
                      --value-class SSN            # §5 entity resolution
    schema-merge serve g1.json g2.json             # long-lived service REPL
    schema-merge bench --workload service-tiny     # service benchmark
    schema-merge stats --workload service-tiny     # telemetry counters
    schema-merge trace --workload service-tiny     # span tree of a replay

Exit codes: 0 success, 1 merge failure (incompatible/inconsistent), 2
bad input.  All subcommands read/write the JSON dialect of
:mod:`repro.io.json_io`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.assertions import isa
from repro.core.diff import diff
from repro.core.keys import KeyedSchema
from repro.core.lower import AnnotatedSchema, lower_merge, lower_properize
from repro.core.merge import merge_report
from repro.core.schema import Schema
from repro.exceptions import SchemaError
from repro.io import json_io, text_format
from repro.render.ascii_art import (
    render_annotated,
    render_keyed,
    render_report,
    render_schema,
)
from repro.render.dot import annotated_to_dot, schema_to_dot
from repro.tools.conflicts import conflict_report

__all__ = ["main", "build_parser"]


def _load_artifact(path: str) -> Any:
    """Load a schema file in either dialect (JSON or the text format).

    JSON documents are recognised by their leading ``{``; everything
    else goes through :mod:`repro.io.text_format`.
    """
    text = Path(path).read_text()
    if text.lstrip().startswith("{"):
        return json_io.loads(text)
    return text_format.parse(text)


def _load_schema(path: str) -> Schema:
    artifact = _load_artifact(path)
    if isinstance(artifact, Schema):
        return artifact
    if isinstance(artifact, KeyedSchema):
        return artifact.schema
    if isinstance(artifact, AnnotatedSchema):
        # Accept annotated files where plain schemas are expected by
        # taking their required-arrow projection.
        return artifact.required_schema()
    raise SchemaError(
        f"{path}: expected a schema document, got "
        f"{type(artifact).__name__}"
    )


def _load_annotated(path: str) -> AnnotatedSchema:
    artifact = _load_artifact(path)
    if isinstance(artifact, AnnotatedSchema):
        return artifact
    if isinstance(artifact, Schema):
        return AnnotatedSchema.from_schema(artifact)
    raise SchemaError(
        f"{path}: expected a schema document, got "
        f"{type(artifact).__name__}"
    )


def _parse_assertions(entries: Optional[Sequence[str]]) -> List[Schema]:
    assertions: List[Schema] = []
    for entry in entries or []:
        if ":" not in entry:
            raise SchemaError(
                f"assertions take the form SUB:SUPER, got {entry!r}"
            )
        sub, sup = entry.split(":", 1)
        assertions.append(isa(sub.strip(), sup.strip()))
    return assertions


def _write_or_print(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text + "\n")
    else:
        print(text)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="schema-merge",
        description=(
            "Order-independent schema merging "
            "(Buneman/Davidson/Kosky, EDBT 1992)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="render a schema as text")
    show.add_argument("schema", help="JSON schema file")

    check = commands.add_parser(
        "check",
        help=(
            "pre-merge conflict report on schema files, or the "
            "concurrency-invariant analyzers on Python sources"
        ),
    )
    check.add_argument(
        "schemas",
        nargs="+",
        help=(
            "JSON schema files (conflict report), or .py files / "
            "directories (static analysis — see docs/STATIC_ANALYSIS.md)"
        ),
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help=(
            "force static-analysis mode and fail on warnings as well "
            "as errors"
        ),
    )

    merge = commands.add_parser(
        "merge", help="upper merge (least upper bound + implicit classes)"
    )
    merge.add_argument("schemas", nargs="+", help="JSON schema files")
    merge.add_argument(
        "--isa",
        action="append",
        metavar="SUB:SUPER",
        help="assert SUB ==> SUPER (repeatable; order never matters)",
    )
    merge.add_argument("-o", "--output", help="write merged schema JSON here")
    merge.add_argument(
        "--explain",
        action="store_true",
        help="print the full merge report instead of the result schema",
    )

    lower = commands.add_parser(
        "lower", help="lower merge (greatest lower bound, federated views)"
    )
    lower.add_argument("schemas", nargs="+", help="JSON schema files")
    lower.add_argument("-o", "--output", help="write merged schema JSON here")
    lower.add_argument(
        "--import-spec",
        action="store_true",
        help="import foreign specialization edges during class completion",
    )

    diff_cmd = commands.add_parser("diff", help="structural diff")
    diff_cmd.add_argument("left", help="JSON schema file")
    diff_cmd.add_argument("right", help="JSON schema file")

    dot = commands.add_parser("dot", help="emit Graphviz DOT")
    dot.add_argument("schema", help="JSON schema file")
    dot.add_argument("-o", "--output", help="write DOT here")

    convert = commands.add_parser(
        "convert", help="convert between the JSON and text dialects"
    )
    convert.add_argument("schema", help="schema file (either dialect)")
    convert.add_argument(
        "--to",
        choices=["json", "text"],
        required=True,
        help="output dialect",
    )
    convert.add_argument("-o", "--output", help="write result here")

    correspond = commands.add_parser(
        "correspond",
        help=(
            "how merged keys identify objects across databases "
            "(agreed / imposed / undeterminable, section 5)"
        ),
    )
    correspond.add_argument(
        "schemas", nargs="+", help="JSON keyed-schema files"
    )
    correspond.add_argument(
        "--isa",
        action="append",
        metavar="SUB:SUPER",
        help="assert SUB ==> SUPER before analysing (repeatable)",
    )

    oo_merge = commands.add_parser(
        "oo-merge",
        help="merge object-oriented class diagrams (translate-merge-back)",
    )
    oo_merge.add_argument(
        "diagrams", nargs="+", help="JSON class-diagram files (repro.oo/1)"
    )
    oo_merge.add_argument(
        "-o", "--output", help="write the merged diagram JSON here"
    )

    fuse_cmd = commands.add_parser(
        "fuse",
        help=(
            "merge keyed schemas and fuse their instances by key-based "
            "object identity (section 5)"
        ),
    )
    fuse_cmd.add_argument(
        "--source",
        action="append",
        required=True,
        metavar="SCHEMA.json:INSTANCE.json",
        help="a keyed-schema file and its instance file (repeatable)",
    )
    fuse_cmd.add_argument(
        "--value-class",
        action="append",
        metavar="CLASS",
        help=(
            "class whose extent holds shared atomic values (repeatable); "
            "everything else is disjointified per source"
        ),
    )
    fuse_cmd.add_argument(
        "--isa",
        action="append",
        metavar="SUB:SUPER",
        help="assert SUB ==> SUPER before merging (repeatable)",
    )
    fuse_cmd.add_argument(
        "-o", "--output", help="write the fused instance JSON here"
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "long-lived merge service: register schemas, then answer "
            "view/query commands from stdin until quit/EOF"
        ),
    )
    serve.add_argument(
        "schemas", nargs="*", help="JSON schema files to pre-register"
    )
    serve.add_argument(
        "--workload",
        metavar="STREAM",
        help=(
            "pre-register the initial schemas of a named request stream "
            "(see repro.generators.workloads.REQUEST_STREAMS)"
        ),
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="enable spans and latency sampling (see :stats / :trace)",
    )
    serve.add_argument(
        "--http",
        type=_positive_int,
        metavar="PORT",
        help=(
            "serve the registry over HTTP on PORT instead of the stdin "
            "REPL (POST /v1/schemas, GET /v1/query/CLASS, ...)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --http (default 127.0.0.1)",
    )
    serve.add_argument(
        "--data-dir",
        metavar="PATH",
        help=(
            "persist the registry under PATH (append-only log + "
            "snapshots) and recover from it on start; omit for a "
            "memory-only registry"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        metavar="N",
        help=(
            "cut a snapshot after every N log appends (needs "
            "--data-dir; default: only on :save)"
        ),
    )

    bench = commands.add_parser(
        "bench",
        help="measure the merge service against a named request stream",
    )
    bench.add_argument(
        "--workload",
        default="service-sharded-200",
        metavar="STREAM",
        help="request stream to replay (default: the acceptance workload)",
    )
    bench.add_argument(
        "--repeat",
        type=_positive_int,
        default=3,
        help="timing repetitions (default 3)",
    )
    bench.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        help="write the full benchmark record here as JSON",
    )
    bench.add_argument(
        "--telemetry-jsonl",
        metavar="PATH",
        help="stream replay spans + a metrics snapshot to this JSONL file",
    )

    stats = commands.add_parser(
        "stats",
        help=(
            "replay a workload (or register schema files) with telemetry "
            "on and dump the metrics registry"
        ),
    )
    stats.add_argument(
        "schemas", nargs="*", help="JSON schema files to register"
    )
    stats.add_argument(
        "--workload",
        metavar="STREAM",
        help="register and replay a named request stream first",
    )
    stats.add_argument(
        "--format",
        dest="fmt",
        choices=["prom", "json"],
        default="prom",
        help="Prometheus text (default) or a JSON snapshot",
    )

    trace = commands.add_parser(
        "trace",
        help=(
            "run registrations with telemetry on and print the resulting "
            "span tree"
        ),
    )
    trace.add_argument(
        "schemas", nargs="*", help="JSON schema files to register"
    )
    trace.add_argument(
        "--workload",
        metavar="STREAM",
        help="register and replay a named request stream instead",
    )
    trace.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also write every span (and a metrics snapshot) here as JSONL",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "convert":
        artifact = _load_artifact(args.schema)
        if args.to == "json":
            text = json_io.dumps(artifact)
        elif isinstance(artifact, AnnotatedSchema):
            text = text_format.format_annotated(artifact).rstrip("\n")
        elif isinstance(artifact, KeyedSchema):
            text = text_format.format_keyed(artifact).rstrip("\n")
        elif isinstance(artifact, Schema):
            text = text_format.format_schema(artifact).rstrip("\n")
        else:
            raise SchemaError(
                f"{args.schema}: cannot write "
                f"{type(artifact).__name__} in the text dialect"
            )
        _write_or_print(text, args.output)
        return 0

    if args.command == "show":
        from repro.instances.instance import Instance
        from repro.models.oo import OODiagram, format_diagram
        from repro.render.ascii_art import render_instance

        artifact = _load_artifact(args.schema)
        if isinstance(artifact, AnnotatedSchema):
            print(render_annotated(artifact, args.schema))
        elif isinstance(artifact, KeyedSchema):
            print(render_keyed(artifact, args.schema))
        elif isinstance(artifact, Schema):
            print(render_schema(artifact, args.schema))
        elif isinstance(artifact, OODiagram):
            print(format_diagram(artifact, args.schema))
        elif isinstance(artifact, Instance):
            print(render_instance(artifact, args.schema))
        else:
            print(json_io.dumps(artifact))
        return 0

    if args.command == "check":
        targets = [Path(path) for path in args.schemas]
        static = args.strict or any(
            target.is_dir() or target.suffix == ".py" for target in targets
        )
        if static:
            from repro.check import run_checks
            from repro.check.runner import render_report as render_diagnostics

            diagnostics = run_checks(args.schemas)
            print(render_diagnostics(diagnostics))
            if any(d.severity == "error" for d in diagnostics):
                return 1
            if args.strict and diagnostics:
                return 1
            return 0
        schemas = [_load_schema(path) for path in args.schemas]
        for line in conflict_report(schemas):
            print(line)
        return 0

    if args.command == "merge":
        schemas = [_load_schema(path) for path in args.schemas]
        assertions = _parse_assertions(args.isa)
        report = merge_report(*schemas, assertions=assertions)
        if args.explain:
            print(render_report(report))
        else:
            print(render_schema(report.merged, "merged schema"))
        if args.output:
            Path(args.output).write_text(json_io.dumps(report.merged) + "\n")
        return 0

    if args.command == "lower":
        annotated = [_load_annotated(path) for path in args.schemas]
        merged = lower_properize(
            lower_merge(
                *annotated, import_specializations=args.import_spec
            )
        )
        print(render_annotated(merged, "lower merge"))
        if args.output:
            Path(args.output).write_text(json_io.dumps(merged) + "\n")
        return 0

    if args.command == "diff":
        left = _load_schema(args.left)
        right = _load_schema(args.right)
        for line in diff(left, right).summary_lines():
            print(line)
        return 0

    if args.command == "correspond":
        from repro.instances.correspondence import (
            analyze_correspondence,
            correspondence_report,
        )

        keyed_inputs = []
        for path in args.schemas:
            artifact = _load_artifact(path)
            if isinstance(artifact, KeyedSchema):
                keyed_inputs.append(artifact)
            elif isinstance(artifact, Schema):
                keyed_inputs.append(KeyedSchema(artifact))
            else:
                raise SchemaError(
                    f"{path}: expected a (keyed) schema document, got "
                    f"{type(artifact).__name__}"
                )
        rows = analyze_correspondence(
            keyed_inputs, assertions=_parse_assertions(args.isa)
        )
        if rows:
            print(correspondence_report(rows))
        else:
            print("no class is shared by two or more inputs")
        return 0

    if args.command == "oo-merge":
        from repro.models.oo import OODiagram, format_diagram, merge_oo

        diagrams = []
        for path in args.diagrams:
            artifact = _load_artifact(path)
            if not isinstance(artifact, OODiagram):
                raise SchemaError(
                    f"{path}: expected a class-diagram document "
                    f"(repro.oo/1), got {type(artifact).__name__}"
                )
            diagrams.append(artifact)
        merged = merge_oo(*diagrams)
        print(format_diagram(merged, "merged class diagram"))
        if args.output:
            Path(args.output).write_text(json_io.dumps(merged) + "\n")
        return 0

    if args.command == "fuse":
        from repro.instances.correspondence import fuse
        from repro.instances.instance import Instance

        sources = []
        for entry in args.source:
            if ":" not in entry:
                raise SchemaError(
                    "--source takes SCHEMA.json:INSTANCE.json, got "
                    f"{entry!r}"
                )
            schema_path, instance_path = entry.split(":", 1)
            schema_artifact = _load_artifact(schema_path)
            if isinstance(schema_artifact, Schema):
                schema_artifact = KeyedSchema(schema_artifact)
            if not isinstance(schema_artifact, KeyedSchema):
                raise SchemaError(
                    f"{schema_path}: expected a (keyed) schema document, "
                    f"got {type(schema_artifact).__name__}"
                )
            instance_artifact = _load_artifact(instance_path)
            if not isinstance(instance_artifact, Instance):
                raise SchemaError(
                    f"{instance_path}: expected an instance document, got "
                    f"{type(instance_artifact).__name__}"
                )
            sources.append((schema_artifact, instance_artifact))
        result = fuse(
            sources,
            value_classes=args.value_class or [],
            assertions=_parse_assertions(args.isa),
        )
        print(result.summary())
        if args.output:
            Path(args.output).write_text(
                json_io.dumps(result.instance) + "\n"
            )
        return 0

    if args.command == "serve":
        return _serve(args)

    if args.command == "bench":
        return _bench(args)

    if args.command == "stats":
        return _stats(args)

    if args.command == "trace":
        return _trace(args)

    if args.command == "dot":
        from repro.models.oo import OODiagram, to_schema as oo_to_schema

        artifact = _load_artifact(args.schema)
        if isinstance(artifact, AnnotatedSchema):
            text = annotated_to_dot(artifact)
        elif isinstance(artifact, Schema):
            text = schema_to_dot(artifact)
        elif isinstance(artifact, OODiagram):
            # Class diagrams render through their general-model image.
            text = schema_to_dot(oo_to_schema(artifact).schema)
        else:
            raise SchemaError(
                f"{args.schema}: cannot render "
                f"{type(artifact).__name__} as DOT"
            )
        _write_or_print(text, args.output)
        return 0

    raise SchemaError(f"unknown command {args.command!r}")


_SERVE_HELP = """\
commands:
  register FILE [FILE...]   fold schema files into the registry (atomic batch)
  retire NAME               withdraw every live version of a named schema
  view [CLASS|#SID]         merged view of one component (or of everything)
  query CLASS               what the merged view asserts about CLASS
  components                per-component summary
  stats                     service_stats() as JSON
  :save                     cut a snapshot now (needs --data-dir)
  :stats                    the metrics registry, Prometheus text format
  :trace                    recent spans as a tree (needs --telemetry)
  help                      this text
  quit                      exit (EOF works too)"""


def _serve(args: argparse.Namespace) -> int:
    """The ``serve`` REPL: a MergeService driven by stdin commands."""
    import json as _json

    from repro import obs
    from repro.service import MergeService

    if args.telemetry:
        obs.enable()
    if args.snapshot_every and not args.data_dir:
        print("error: --snapshot-every needs --data-dir", file=sys.stderr)
        return 2
    if args.data_dir:
        service = MergeService.open(
            args.data_dir, snapshot_every=args.snapshot_every
        )
        if service.service_stats()["generation"]:
            print(
                f"recovered registry from {args.data_dir} at "
                f"generation {service.service_stats()['generation']}"
            )
    else:
        service = MergeService()
    initial = [_load_schema(path) for path in args.schemas]
    if args.workload:
        from repro.generators.workloads import get_request_stream

        initial += get_request_stream(args.workload).make()[0]
    if initial:
        receipt = service.register(initial)
        print(
            f"registered {receipt.accepted} schemas in "
            f"{receipt.components} components"
        )
    if args.http:
        from repro.service.http import serve_http

        serve_http(
            service,
            host=args.host,
            port=args.http,
            announce=lambda host, port: print(
                f"serving HTTP on {host}:{port} (Ctrl-C to stop)",
                flush=True,
            ),
        )
        return 0
    prompt = "serve> " if sys.stdin.isatty() else ""
    while True:
        try:
            line = input(prompt)
        except EOFError:
            return 0
        words = line.split()
        if not words:
            continue
        command, rest = words[0].lower(), words[1:]
        try:
            if command in ("quit", "exit"):
                service.close()
                return 0
            elif command == "help":
                print(_SERVE_HELP)
            elif command == "register":
                if not rest:
                    print("register takes at least one schema file")
                    continue
                receipt = service.register(
                    [_load_schema(path) for path in rest]
                )
                print(
                    f"generation {receipt.generation}: "
                    f"{receipt.components} components"
                )
            elif command == "retire":
                if len(rest) != 1:
                    print("retire takes exactly one schema name")
                    continue
                retired = service.retire(rest[0])
                print(
                    f"retired {rest[0]} versions "
                    f"{list(retired.versions)}; "
                    f"{retired.components} components at "
                    f"generation {retired.generation}"
                )
            elif command == ":save":
                if not args.data_dir:
                    print("no --data-dir; nothing to save to")
                    continue
                seq = service.save()
                print(f"snapshot cut at log record {seq}")
            elif command == "view":
                target = rest[0] if rest else None
                if target is not None and target.startswith("#"):
                    target = int(target[1:])
                merged = service.merged_view(target)
                title = (
                    "merged view (all components)"
                    if target is None
                    else f"merged view of {rest[0]}"
                )
                print(render_schema(merged, title))
            elif command == "query":
                if len(rest) != 1:
                    print("query takes exactly one class name")
                    continue
                print(
                    _json.dumps(service.query(rest[0]).to_dict(), indent=2)
                )
            elif command == "components":
                for sid, info in service.components().items():
                    print(
                        f"  #{sid}: {info['schemas']} schemas, "
                        f"{info['classes']} classes, "
                        f"generation {info['generation']}"
                    )
            elif command == "stats":
                print(_json.dumps(service.service_stats(), indent=2))
            elif command == ":stats":
                print(obs.prometheus_text())
            elif command == ":trace":
                spans = obs.tracer().spans()
                if spans:
                    print(obs.render_spans(spans))
                elif not obs.is_enabled():
                    print("telemetry is off (restart with --telemetry)")
                else:
                    print("no spans recorded yet")
            else:
                print(f"unknown command {command!r} (try: help)")
        except (SchemaError, KeyError, ValueError, OSError) as exc:
            # The service survives bad requests; report and keep serving.
            message = (
                exc.args[0]
                if isinstance(exc, KeyError) and exc.args
                else exc
            )
            print(f"error: {message}")


def _bench(args: argparse.Namespace) -> int:
    """The ``bench`` subcommand: run and summarize one request stream."""
    import json as _json

    from repro.service.bench import run_bench

    result = run_bench(
        args.workload,
        repeat=args.repeat,
        telemetry_jsonl=args.telemetry_jsonl,
    )
    summary = result["summary"]
    timings = result["timings"]
    print(f"workload: {result['workload']}")
    print(
        f"  initial schemas: {result['initial_schemas']}, "
        f"requests: {result['requests']}, "
        f"components: {result['invalidation']['components']}"
    )
    print(
        f"  cold join_all:      {timings['join_all_cold']['best_s'] * 1e3:9.2f} ms"
    )
    print(
        f"  warm merged_view:   {timings['merged_view_warm']['best_s'] * 1e6:9.2f} us"
    )
    print(
        f"  view speedup:       {summary['view_speedup_vs_cold_join_all']:9.1f}x"
    )
    print(
        f"  stream throughput:  {summary['requests_per_second']:9.0f} req/s"
    )
    print(
        "  invalidation:       "
        + (
            "only the touched component recomputed"
            if summary["invalidation_ok"]
            else "FAILED — untouched components recomputed"
        )
    )
    for op in ("merged_view", "query", "register"):
        block = result["latency"][op]
        if not block["count"]:
            continue
        print(
            f"  {op + ' latency:':<20}"
            f"p50 {block['p50'] * 1e6:8.1f} us   "
            f"p95 {block['p95'] * 1e6:8.1f} us   "
            f"p99 {block['p99'] * 1e6:8.1f} us"
        )
    if args.telemetry_jsonl:
        print(f"wrote {args.telemetry_jsonl}")
    if args.json_out:
        Path(args.json_out).write_text(
            _json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    return 0 if summary["invalidation_ok"] else 1


def _telemetry_session(args: argparse.Namespace) -> Tuple[Any, int]:
    """Register the inputs (and replay any workload) with telemetry on.

    Shared by ``stats`` and ``trace``: a fresh fully-sampled service,
    every request timed, every registration traced.  The caller is
    responsible for restoring the previous telemetry state.
    """
    from repro.service import MergeService
    from repro.service.bench import replay

    initial = [_load_schema(path) for path in args.schemas]
    requests = []
    if args.workload:
        from repro.generators.workloads import get_request_stream

        workload_initial, requests = get_request_stream(args.workload).make()
        initial = workload_initial + initial
    if not initial:
        raise SchemaError(
            "nothing to measure: give schema files and/or --workload STREAM"
        )
    service = MergeService(telemetry_sample_every=1)
    service.register(initial)
    if requests:
        replay(service, requests)
    return service, len(requests)


def _stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: replay, then dump the metrics registry."""
    import json as _json

    from repro import obs

    was_enabled = obs.is_enabled()
    obs.enable()
    try:
        # Bound to a local so the service's weakref-backed gauges stay
        # readable while the registry is dumped.
        service, _requests = _telemetry_session(args)
        if args.fmt == "json":
            print(
                _json.dumps(obs.registry().snapshot(), indent=2, sort_keys=True)
            )
        else:
            print(obs.prometheus_text())
        del service
    finally:
        if not was_enabled:
            obs.disable()
    return 0


def _trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: replay, then print the span tree."""
    from repro import obs

    was_enabled = obs.is_enabled()
    obs.enable()
    tracer = obs.tracer()
    tracer.clear()
    exporter = (
        obs.JsonlExporter(args.jsonl) if args.jsonl is not None else None
    )
    if exporter is not None:
        tracer.add_sink(exporter.export_span)
    try:
        _telemetry_session(args)
        spans = tracer.spans()
        if spans:
            print(obs.render_spans(spans))
        else:
            print("no spans recorded")
        if exporter is not None:
            exporter.export_metrics()
            print(f"wrote {args.jsonl}")
    finally:
        if exporter is not None:
            tracer.remove_sink(exporter.export_span)
            exporter.close()
        if not was_enabled:
            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
