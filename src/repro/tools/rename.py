"""Renaming plans: the designer's conflict-resolution instrument.

Section 3 makes renaming the *only* mechanism for identifying classes
across schemas ("if two classes in different schemas have the same
name, then they are the same class") and for separating accidental
homonyms.  A :class:`RenamingPlan` collects per-schema class and label
renamings, validates them (no collapsing of distinct classes within a
schema, no contradictory entries) and applies them in one shot, so a
whole integration session's naming decisions form a reviewable,
replayable artifact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.core.names import ClassName, Label, name
from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError

__all__ = ["RenamingPlan"]

NameLike = Union[ClassName, str]


class RenamingPlan:
    """Per-schema renamings of classes and arrow labels.

    Schemas are addressed by index (position in the sequence handed to
    :meth:`apply`).  Entries are added with :meth:`rename_class` /
    :meth:`rename_label`; a ``schema_index`` of ``None`` applies the
    renaming to every schema (the common "synonym everywhere" case).
    """

    def __init__(self):
        self._class_renames: Dict[Tuple[object, ClassName], ClassName] = {}
        self._label_renames: Dict[Tuple[object, Label], Label] = {}

    def rename_class(
        self,
        old: NameLike,
        new: NameLike,
        schema_index: object = None,
    ) -> "RenamingPlan":
        """Record ``old → new`` for one schema (or all); chainable."""
        key = (schema_index, name(old))
        target = name(new)
        existing = self._class_renames.get(key)
        if existing is not None and existing != target:
            raise SchemaValidationError(
                f"contradictory renaming of {old}: {existing} vs {target}"
            )
        self._class_renames[key] = target
        return self

    def rename_label(
        self,
        old: Label,
        new: Label,
        schema_index: object = None,
    ) -> "RenamingPlan":
        """Record a label renaming for one schema (or all); chainable."""
        key = (schema_index, old)
        existing = self._label_renames.get(key)
        if existing is not None and existing != new:
            raise SchemaValidationError(
                f"contradictory renaming of label {old!r}: "
                f"{existing!r} vs {new!r}"
            )
        self._label_renames[key] = new
        return self

    def class_map_for(self, index: int) -> Dict[ClassName, ClassName]:
        """The effective class renaming for schema *index*."""
        table: Dict[ClassName, ClassName] = {}
        for (scope, old), new in self._class_renames.items():
            if scope is None or scope == index:
                table[old] = new
        return table

    def label_map_for(self, index: int) -> Dict[Label, Label]:
        """The effective label renaming for schema *index*."""
        table: Dict[Label, Label] = {}
        for (scope, old), new in self._label_renames.items():
            if scope is None or scope == index:
                table[old] = new
        return table

    def apply(self, schemas: Sequence[Schema]) -> List[Schema]:
        """Apply the plan to a sequence of schemas, returning new ones."""
        results: List[Schema] = []
        for index, schema in enumerate(schemas):
            class_map = {
                old: new
                for old, new in self.class_map_for(index).items()
                if old in schema.classes
            }
            renamed = schema.rename(class_map) if class_map else schema
            label_map = {
                old: new
                for old, new in self.label_map_for(index).items()
                if old in renamed.labels()
            }
            if label_map:
                renamed = renamed.rename_labels(label_map)
            results.append(renamed)
        return results

    def __len__(self) -> int:
        return len(self._class_renames) + len(self._label_renames)

    def __repr__(self) -> str:
        return (
            f"RenamingPlan({len(self._class_renames)} class, "
            f"{len(self._label_renames)} label renaming(s))"
        )
