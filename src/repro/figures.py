"""Constructors for every figure of the paper (the evaluation artifacts).

The paper has no tables; its worked figures *are* its evaluation.  Each
function below rebuilds one figure's schemas exactly as drawn (or, for
Figures 4–5, as reconstructed from the prose — the scanned diagram is
partially garbled, and the prose fully determines the construction; the
reconstruction is documented on :func:`figure4_schemas`).  The
test-suite and the benchmark harness assert the paper's claims against
these constructions:

==========  ==========================================================
Figure 1    ER diagram with "isa" relations (Dog / Kennel / Lives)
Figure 2    its translation into the general model
Figure 3    a merge that forces an implicit class below {B1, B2}
Figure 4    three schemas whose naive pairwise merge is order-dependent
Figure 5    the two distinct naive results (vs. our single result)
Figure 6    schemas G1 and G2 of the candidate-merge discussion
Figure 7    candidates G3 (the merge) and G4 (a stronger upper bound)
Figure 8    the weak least upper bound G1 ⊔ G2
Figure 9    Advisor ==> Committee with keys expressing cardinalities
Figure 10   Transaction with two composite keys
Figure 11   the participation-constraint semilattice (see
            :mod:`repro.core.participation`)
==========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.schema import Schema

__all__ = [
    "figure1_er_diagram",
    "figure2_schema",
    "figure3_schemas",
    "figure3_expected_weak_merge",
    "figure4_schemas",
    "figure6_schemas",
    "figure7_candidate_g3_description",
    "figure7_candidate_g4",
    "figure8_expected_weak_merge",
    "figure9_keyed_schema",
    "figure9_committee_schema",
    "figure9_advisor_schema",
    "figure10_keyed_schema",
]


# ----------------------------------------------------------------------
# Figures 1 and 2 — the Dog/Kennel running example
# ----------------------------------------------------------------------

def figure1_er_diagram():
    """The ER diagram of Figure 1, in the ER substrate model.

    Entities ``Dog`` (attributes ``owner:person``, ``kind:breed``,
    ``age:int``), its specializations ``Police-dog`` (``id-num:int``)
    and ``Guide-dog``, ``Kennel`` (``addr:place``), and the binary
    relationship ``Lives`` with roles ``occ`` (Dog) and ``home``
    (Kennel).

    Imported lazily to keep :mod:`repro.figures` free of a hard
    dependency cycle with the model layer.
    """
    from repro.models.er import ERAttribute, ERDiagram, EREntity, ERRelationship

    return ERDiagram(
        entities=[
            EREntity(
                "Dog",
                attributes=[
                    ERAttribute("owner", "Person"),
                    ERAttribute("kind", "Breed"),
                    ERAttribute("age", "Int"),
                ],
            ),
            EREntity(
                "Police-dog",
                attributes=[ERAttribute("id-num", "Int")],
                isa=["Dog"],
            ),
            EREntity("Guide-dog", isa=["Dog"]),
            EREntity("Kennel", attributes=[ERAttribute("addr", "Place")]),
        ],
        relationships=[
            ERRelationship(
                "Lives", roles={"occ": "Dog", "home": "Kennel"}
            ),
        ],
    )


def figure2_schema() -> Schema:
    """The database schema of Figure 2 — Figure 1 in the general model.

    Single arrows are attribute edges, double arrows specializations;
    the drawing shows the inherited ``kind``/``age`` arrows explicitly,
    which our builder restores through the W1 closure.
    """
    return Schema.build(
        arrows=[
            ("Lives", "occ", "Dog"),
            ("Lives", "home", "Kennel"),
            ("Dog", "owner", "Person"),
            ("Dog", "kind", "Breed"),
            ("Dog", "age", "Int"),
            ("Police-dog", "id-num", "Int"),
            ("Kennel", "addr", "Place"),
        ],
        spec=[
            ("Police-dog", "Dog"),
            ("Guide-dog", "Dog"),
        ],
    )


# ----------------------------------------------------------------------
# Figure 3 — a merge that needs an implicit class
# ----------------------------------------------------------------------

def figure3_schemas() -> Tuple[Schema, Schema]:
    """The two schemas of Figure 3.

    The first asserts ``C ==> A1`` and ``C ==> A2``; the second gives
    ``A1`` and ``A2`` ``a``-arrows to ``B1`` and ``B2`` respectively.
    Merging forces ``C`` to have an ``a``-arrow into a common
    specialization of ``B1`` and ``B2`` — the implicit class.
    """
    first = Schema.build(spec=[("C", "A1"), ("C", "A2")])
    second = Schema.build(
        arrows=[("A1", "a", "B1"), ("A2", "a", "B2")]
    )
    return first, second


def figure3_expected_weak_merge() -> Schema:
    """The weak merge of the Figure 3 schemas, written out by hand."""
    return Schema.build(
        classes=["A1", "A2", "B1", "B2", "C"],
        arrows=[
            ("A1", "a", "B1"),
            ("A2", "a", "B2"),
            ("C", "a", "B1"),
            ("C", "a", "B2"),
        ],
        spec=[("C", "A1"), ("C", "A2")],
    )


# ----------------------------------------------------------------------
# Figures 4 and 5 — the associativity counterexample
# ----------------------------------------------------------------------

def figure4_schemas() -> Tuple[Schema, Schema, Schema]:
    """The three simple schemas of Figure 4 (reconstructed from prose).

    The scanned figure is partially garbled; the prose determines the
    construction up to renaming: merging ``G1`` with ``G2`` must give
    some class ``a``-arrows to exactly ``{D, E}``, merging ``G1`` with
    ``G3`` must give ``{E, F}``, and the three-way merge must want one
    implicit class below ``{D, E, F}``.  With the figure's seven class
    letters ``A, B, C, D, E, F, H`` the minimal schemas realising this
    are::

        G1:  H ==> A,  H ==> B,  H ==> C,  C --a--> E
        G2:  A --a--> D
        G3:  B --a--> F

    so ``H`` inherits ``a``-arrows to ``E`` (from ``G1`` itself), ``D``
    (once ``G2`` joins) and ``F`` (once ``G3`` joins), exactly matching
    the prose's three scenarios.
    """
    g1 = Schema.build(
        spec=[("H", "A"), ("H", "B"), ("H", "C")],
        arrows=[("C", "a", "E")],
    )
    g2 = Schema.build(arrows=[("A", "a", "D")])
    g3 = Schema.build(arrows=[("B", "a", "F")])
    return g1, g2, g3


# ----------------------------------------------------------------------
# Figures 6, 7 and 8 — what the merge should (not) assert
# ----------------------------------------------------------------------

def figure6_schemas() -> Tuple[Schema, Schema]:
    """The schemas G1 and G2 of Figure 6.

    ``G1`` is the diamond ``E ==> C ==> A``, ``E ==> D ==> B``;
    ``G2`` gives ``F`` ``a``-arrows whose minimal targets are ``C`` and
    ``D`` (the prose for Figure 7: "G3 only states that the a-arrow of
    F has both classes C and D").
    """
    g1 = Schema.build(
        spec=[("C", "A"), ("D", "B"), ("E", "C"), ("E", "D")],
    )
    g2 = Schema.build(arrows=[("F", "a", "C"), ("F", "a", "D")])
    return g1, g2


def figure8_expected_weak_merge() -> Schema:
    """Figure 8: the least upper bound ``G1 ⊔ G2``, written out by hand.

    ``F`` keeps its arrows to ``C`` and ``D`` and gains the W2-implied
    arrows to ``A`` and ``B`` — the four ``a``-arrows the figure draws.
    """
    return Schema.build(
        classes=["A", "B", "C", "D", "E", "F"],
        arrows=[
            ("F", "a", "C"),
            ("F", "a", "D"),
            ("F", "a", "A"),
            ("F", "a", "B"),
        ],
        spec=[("C", "A"), ("D", "B"), ("E", "C"), ("E", "D")],
    )


def figure7_candidate_g4() -> Schema:
    """Figure 7's G4: the *stronger* upper bound that re-uses ``E``.

    G4 asserts that the ``a``-arrow of ``F`` has class ``E`` — extra
    information neither input supplies, which is why the paper rejects
    it as "the" merge despite it having fewer classes than G3.
    """
    return Schema.build(
        spec=[("C", "A"), ("D", "B"), ("E", "C"), ("E", "D")],
        arrows=[("F", "a", "E")],
    )


def figure7_candidate_g3_description() -> Dict[str, object]:
    """What Figure 7's G3 must look like, as checkable facts.

    G3 is the properized merge: the Figure 8 weak schema plus one
    implicit class below ``{C, D}`` serving as the canonical target of
    ``F``'s ``a``-arrow.  Returned as a fact dictionary because the
    implicit class's *name* is library-specific; the benchmark asserts
    the facts rather than a drawing.
    """
    return {
        "base_classes": {"A", "B", "C", "D", "E", "F"},
        "implicit_below": {"C", "D"},
        "implicit_count": 1,
    }


# ----------------------------------------------------------------------
# Figures 9 and 10 — keys and cardinality constraints
# ----------------------------------------------------------------------

def figure9_committee_schema() -> KeyedSchema:
    """The Committee view: a many-many relationship, keyed by both roles."""
    schema = Schema.build(
        arrows=[
            ("Committee", "faculty", "Faculty"),
            ("Committee", "victim", "GS"),
        ],
    )
    return KeyedSchema(schema, {"Committee": KeyFamily.of({"faculty", "victim"})})


def figure9_advisor_schema() -> KeyedSchema:
    """The Advisor view: one-to-many, expressed by the key ``{victim}``."""
    schema = Schema.build(
        arrows=[
            ("Advisor", "faculty", "Faculty"),
            ("Advisor", "victim", "GS"),
        ],
    )
    return KeyedSchema(schema, {"Advisor": KeyFamily.of({"victim"})})


def figure9_keyed_schema() -> KeyedSchema:
    """Figure 9 in full: ``Advisor ==> Committee`` with both key families.

    The specialization asserts every advisor sits on the committee; the
    key families satisfy the section 5 constraint
    ``SK(Advisor) ⊇ SK(Committee)``.
    """
    schema = Schema.build(
        arrows=[
            ("Advisor", "faculty", "Faculty"),
            ("Advisor", "victim", "GS"),
            ("Committee", "faculty", "Faculty"),
            ("Committee", "victim", "GS"),
        ],
        spec=[("Advisor", "Committee")],
    )
    return KeyedSchema(
        schema,
        {
            "Committee": KeyFamily.of({"faculty", "victim"}),
            "Advisor": KeyFamily.of({"victim"}),
        },
    )


def figure10_keyed_schema() -> KeyedSchema:
    """Figure 10: ``Transaction`` with the two keys ``{loc, at}`` and
    ``{card, at}`` — a key assertion no edge-cardinality labelling can
    express."""
    schema = Schema.build(
        arrows=[
            ("Transaction", "loc", "Machine"),
            ("Transaction", "at", "Time"),
            ("Transaction", "card", "Card"),
            ("Transaction", "amount", "Amount"),
        ],
    )
    return KeyedSchema(
        schema,
        {"Transaction": KeyFamily.of({"loc", "at"}, {"card", "at"})},
    )
