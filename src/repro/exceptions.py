"""Exception hierarchy for the schema-merging library.

The paper distinguishes two failure modes of the merge (section 4.2):

* the schemas may be *incompatible* — the union of their specialization
  relations has a cycle, so no common upper bound exists
  (:class:`IncompatibleSchemasError`);
* the schemas may be *inconsistent* — an implicit class would identify
  real-world classes that the consistency relationship says cannot share
  instances (:class:`InconsistentSchemasError`).

Everything else (malformed input graphs, broken invariants, bad
translations) raises more specific subclasses of :class:`SchemaError` so
callers can distinguish user errors from library bugs.
"""

from __future__ import annotations


class SchemaError(Exception):
    """Base class for all errors raised by this library."""


class SchemaValidationError(SchemaError):
    """A graph fails the structural requirements of a (weak) schema.

    Raised when arrow or specialization edges mention unknown classes,
    when the specialization relation is not a partial order, or when the
    W1/W2 closure conditions of section 4.1 are violated by a graph that
    was asserted to be already closed.
    """


class NotProperError(SchemaError):
    """A weak schema was used where a proper schema is required.

    Proper schemas additionally satisfy condition 1 of section 2: every
    populated arrow label has a *canonical class* (a least target under
    the specialization order).
    """


class IncompatibleSchemasError(SchemaError):
    """The schemas have no common upper bound.

    Section 4.1: a finite collection of weak schemas is *compatible* iff
    the transitive closure of the union of their specialization relations
    is antisymmetric.  When it is not, the least upper bound (and hence
    the merge) does not exist.
    """

    def __init__(self, message: str, cycle: tuple = ()):  # noqa: D401
        super().__init__(message)
        #: A witness cycle of class names demonstrating the failure of
        #: antisymmetry, when one could be extracted.
        self.cycle = tuple(cycle)


class InconsistentSchemasError(SchemaError):
    """An implicit class would conflate classes marked inconsistent.

    Section 4.2 proposes a *consistency relationship* on class names; a
    merge fails when some implicit class contains a pair of classes not
    related by it.
    """

    def __init__(self, message: str, offending_pair: tuple = ()):  # noqa: D401
        super().__init__(message)
        #: The pair of class names that the consistency relationship
        #: rejects, when available.
        self.offending_pair = tuple(offending_pair)


class KeyConstraintError(SchemaError):
    """A key family violates its structural requirements.

    Keys of a class must be sets of labels of arrows out of that class,
    and specialization must only ever *add* keys (``p ==> q`` implies
    ``SK(p) ⊇ SK(q)``, section 5).
    """


class ParticipationError(SchemaError):
    """An invalid participation constraint or annotation was supplied."""


class TranslationError(SchemaError):
    """A schema cannot be translated to or from a restricted data model.

    Raised, for instance, when a generic schema does not satisfy the
    stratification constraints of the ER or relational models.
    """


class InstanceError(SchemaError):
    """An instance is malformed or does not satisfy a schema."""


class RenderError(SchemaError):
    """A schema cannot be rendered in the requested format."""


class SerializationError(SchemaError):
    """A document cannot be decoded into a library artifact."""


class ServiceError(SchemaError):
    """Base class for errors raised by the long-lived merge service.

    The service layer (:mod:`repro.service`) consolidates its failure
    modes here so callers — and the HTTP front end, which maps each
    subclass to a status code — never have to catch bare
    ``KeyError``/``ValueError``.
    """


class UnknownClassError(ServiceError, KeyError):
    """A lookup named a class (or component id) the registry never saw.

    Subclasses :class:`KeyError` so pre-taxonomy callers that caught
    ``KeyError`` keep working; new code should catch this type.  The
    HTTP front end maps it to ``404 Not Found``.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; read as a SchemaError.
        return self.args[0] if self.args else ""


class UnknownWorkloadError(ServiceError, KeyError):
    """A benchmark workload / request stream name is not registered."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class ServiceShutdownError(ServiceError):
    """The service was closed; no further requests are accepted.

    The HTTP front end maps it to ``503 Service Unavailable``.
    """


class InvalidRequestError(ServiceError, ValueError):
    """A malformed service request (bad parameter, unknown request kind).

    Subclasses :class:`ValueError` for pre-taxonomy callers; the HTTP
    front end maps it to ``400 Bad Request``.
    """


class UnknownSchemaError(ServiceError, KeyError):
    """A lookup named a registered-schema *name* the registry never saw.

    Distinct from :class:`UnknownClassError`: classes are merge inputs,
    named schemas are registry entries with versions and a lifecycle.
    Subclasses :class:`KeyError` like its sibling; the HTTP front end
    maps it to ``404 Not Found``.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; read as a SchemaError.
        return self.args[0] if self.args else ""


class RetiredSchemaError(ServiceError):
    """The named schema existed but every version has been retired.

    Retirement is deliberate removal, not absence — the HTTP front end
    maps it to ``410 Gone`` so clients can distinguish "never existed"
    (404) from "withdrawn, stop asking" (410).
    """


class StorageError(ServiceError):
    """Base class for durable-registry failures (``repro.service.storage``).

    Covers backend I/O faults and recovery-time integrity violations;
    the HTTP front end maps the family to ``500 Internal Server Error``
    (persistence trouble is a server-side condition, never the
    client's request).
    """


class CorruptLogError(StorageError):
    """The append-only registration log fails its integrity checks.

    Raised at recovery when a well-formed log record has a checksum
    mismatch, the sequence numbers are not contiguous, or replaying a
    record does not reproduce the generation it committed.  A torn
    *final* record (a crash mid-append) is not corruption — recovery
    truncates to the last durable record instead.
    """


class CorruptSnapshotError(StorageError):
    """A persisted snapshot or manifest fails its integrity checks.

    Raised when a snapshot file's checksum or encoding is invalid or
    the decoded dense closure fails invariant re-validation.  A
    *missing* snapshot is not corruption — recovery falls back to full
    log replay.
    """


#: The service-facing singular alias: a *single* schema failing to fold
#: into the registry raises the same condition the pairwise algebra
#: reports for a whole family.
IncompatibleSchemaError = IncompatibleSchemasError
