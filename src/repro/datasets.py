"""Curated example scenarios beyond the paper's figures.

The figures are minimal by design; realistic integration exercises need
schemas with a few dozen classes, genuine overlap, keys and
participation data.  Three scenarios are provided, each a function
returning fresh objects so callers can mutate-by-rebuilding freely:

* :func:`university_scenario` — three administrative views of one
  university (registrar, graduate office, payroll) with keys;
* :func:`veterinary_scenario` — the paper's dog theme at clinic scale:
  clinic, registry and breeder views plus designer assertions;
* :func:`retail_federation_scenario` — annotated schemas of three
  autonomous store databases, for lower-merge/federation work.

Used by the examples, the integration tests and a benchmark; they are
deliberately hand-written (not generated) so their merges have
recognisable, reviewable structure.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.assertions import AssertionSet
from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.lower import AnnotatedSchema
from repro.core.participation import Participation
from repro.core.schema import Schema

__all__ = [
    "university_scenario",
    "veterinary_scenario",
    "retail_federation_scenario",
    "person_registry_scenario",
    "PERSON_REGISTRY_VALUE_CLASSES",
]


def university_scenario() -> Tuple[List[KeyedSchema], AssertionSet]:
    """Three keyed views of a university, plus the assertions that
    relate them.  The expected merge is exercised in the tests."""
    registrar = KeyedSchema(
        Schema.build(
            arrows=[
                ("Student", "id", "StudentId"),
                ("Student", "name", "Name"),
                ("Student", "enrolled", "Term"),
                ("Course", "code", "CourseCode"),
                ("Course", "title", "Name"),
                ("Enrollment", "student", "Student"),
                ("Enrollment", "course", "Course"),
                ("Enrollment", "grade", "Grade"),
            ],
        ),
        {
            "Student": KeyFamily.of({"id"}),
            "Course": KeyFamily.of({"code"}),
            "Enrollment": KeyFamily.of({"student", "course"}),
        },
        check_spec_monotone=False,
    )
    graduate_office = KeyedSchema(
        Schema.build(
            arrows=[
                ("GS", "id", "StudentId"),
                ("GS", "thesis", "Title"),
                ("Advisor", "faculty", "Faculty"),
                ("Advisor", "victim", "GS"),
                ("Committee", "faculty", "Faculty"),
                ("Committee", "victim", "GS"),
                ("Faculty", "id", "FacultyId"),
            ],
            spec=[("Advisor", "Committee")],
        ),
        {
            "GS": KeyFamily.of({"id"}),
            "Advisor": KeyFamily.of({"victim"}),
            "Committee": KeyFamily.of({"faculty", "victim"}),
            "Faculty": KeyFamily.of({"id"}),
        },
        check_spec_monotone=False,
    )
    payroll = KeyedSchema(
        Schema.build(
            arrows=[
                ("Employee", "id", "EmployeeId"),
                ("Employee", "salary", "Money"),
                ("Faculty", "id", "FacultyId"),
                ("Faculty", "dept", "Department"),
                ("TA", "stipend", "Money"),
            ],
            spec=[("Faculty", "Employee"), ("TA", "Employee")],
        ),
        {
            "Employee": KeyFamily.of({"id"}),
            "Faculty": KeyFamily.of({"id"}),
        },
        check_spec_monotone=False,
    )
    assertions = (
        AssertionSet()
        .add_isa("GS", "Student")  # graduate students are students
        .add_isa("TA", "GS")  # TAs are graduate students
    )
    return [registrar, graduate_office, payroll], assertions


def veterinary_scenario() -> Tuple[List[Schema], AssertionSet]:
    """Three plain schemas around the paper's dog theme."""
    clinic = Schema.build(
        arrows=[
            ("Patient", "chart", "Chart"),
            ("Dog", "name", "Name"),
            ("Dog", "age", "Int"),
            ("Visit", "patient", "Patient"),
            ("Visit", "vet", "Vet"),
            ("Visit", "date", "Date"),
        ],
        spec=[("Dog", "Patient"), ("Cat", "Patient")],
    )
    registry = Schema.build(
        arrows=[
            ("Dog", "license", "LicenseNo"),
            ("Dog", "owner", "Person"),
            ("Dog", "kind", "Breed"),
            ("Police-dog", "id-num", "Int"),
            ("Kennel", "addr", "Place"),
            ("Lives", "occ", "Dog"),
            ("Lives", "home", "Kennel"),
        ],
        spec=[("Police-dog", "Dog"), ("Guide-dog", "Dog")],
    )
    breeder = Schema.build(
        arrows=[
            ("Dog", "kind", "Breed"),
            ("Dog", "sire", "Dog"),
            ("Dog", "dam", "Dog"),
            ("Breed", "group", "BreedGroup"),
        ],
    )
    assertions = AssertionSet().add_isa("Police-dog", "Patient")
    return [clinic, registry, breeder], assertions


def retail_federation_scenario() -> List[AnnotatedSchema]:
    """Three autonomous store databases for lower-merge federation."""
    web_store = AnnotatedSchema.build(
        arrows=[
            ("Order", "customer", "Customer"),
            ("Order", "placed", "Timestamp"),
            ("Order", "total", "Money"),
            ("Customer", "email", "Email"),
            ("Customer", "name", "Name", Participation.OPTIONAL),
        ],
    )
    outlet = AnnotatedSchema.build(
        arrows=[
            ("Order", "total", "Money"),
            ("Order", "register", "RegisterId"),
            ("Customer", "name", "Name"),
            ("Customer", "loyalty", "CardNo", Participation.OPTIONAL),
        ],
    )
    wholesale = AnnotatedSchema.build(
        arrows=[
            ("Order", "customer", "Customer"),
            ("Order", "total", "Money"),
            ("Customer", "name", "Name"),
            ("Customer", "vat", "VatNo"),
            ("BulkOrder", "pallets", "Int"),
        ],
        spec=[("BulkOrder", "Order")],
    )
    return [web_store, outlet, wholesale]


def person_registry_scenario() -> List[Tuple[KeyedSchema, "Instance"]]:
    """Two keyed Person databases with overlapping people (section 5).

    The census declares ``{ssn}`` a key; payroll has the ssn arrow but
    never declared the key — the paper's *imposed* case.  Alice appears
    in both sources under the same social security number, so fusing
    the scenario identifies exactly one pair of objects.  Value classes
    (``SSN``, ``Date``, ``Str``, ``Money``) hold shared atomic oids.
    """
    from repro.instances.instance import Instance

    census = KeyedSchema(
        Schema.build(
            arrows=[("Person", "ssn", "SSN"), ("Person", "born", "Date")]
        ),
        {"Person": KeyFamily.of({"ssn"})},
    )
    census_data = Instance.build(
        extents={
            "Person": {"c-alice", "c-bob"},
            "SSN": {"123-45", "678-90"},
            "Date": {"1970-01-01", "1980-02-02"},
        },
        values={
            ("c-alice", "ssn"): "123-45",
            ("c-alice", "born"): "1970-01-01",
            ("c-bob", "ssn"): "678-90",
            ("c-bob", "born"): "1980-02-02",
        },
    )
    payroll = KeyedSchema(
        Schema.build(
            arrows=[
                ("Person", "ssn", "SSN"),
                ("Person", "name", "Str"),
                ("Person", "salary", "Money"),
            ]
        )
    )
    payroll_data = Instance.build(
        extents={
            "Person": {"emp-1", "emp-2"},
            "SSN": {"123-45", "555-55"},
            "Str": {"Alice", "Carol"},
            "Money": {"90k", "85k"},
        },
        values={
            ("emp-1", "ssn"): "123-45",
            ("emp-1", "name"): "Alice",
            ("emp-1", "salary"): "90k",
            ("emp-2", "ssn"): "555-55",
            ("emp-2", "name"): "Carol",
            ("emp-2", "salary"): "85k",
        },
    )
    return [(census, census_data), (payroll, payroll_data)]


#: The value classes of :func:`person_registry_scenario` — extents that
#: hold shared atomic values rather than private objects.
PERSON_REGISTRY_VALUE_CLASSES = ("SSN", "Date", "Str", "Money")
