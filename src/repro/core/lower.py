"""Lower merges: greatest lower bounds for federated views (section 6).

The upper merge answers "what single schema presents *all* the
information of the inputs"; a federated system needs the dual — a
schema every input's instances already satisfy, so their union can be
queried uniformly.  Taking the plain greatest lower bound under ``⊑``
is unsatisfactory (everything the schemas disagree on vanishes), so the
paper refines schemas with **participation constraints** on arrows
(:mod:`repro.core.participation`) and merges them by pointwise greatest
lower bound: a required arrow merged with an absent one becomes
*optional* instead of disappearing.

This module provides:

* :class:`AnnotatedSchema` — a schema whose arrows carry participation
  constraints, with its own closure discipline (required arrows behave
  exactly like ordinary weak-schema arrows; optional arrows only
  propagate along target generalization, since a specialization may
  legitimately *forbid* an attribute its superclass allows);
* :func:`annotated_leq` — the refined information ordering, under which
  an absent arrow (constraint ``0``) is *information*, incomparable
  with ``1``;
* :func:`lower_merge` — class completion followed by the pointwise GLB
  (the section 6 construction);
* :func:`lower_properize` — our formalization of the paper's one-line
  sketch that lower implicit classes are "introduced above, rather than
  below": conflicting alternative targets are generalized into a
  :class:`~repro.core.names.GenName` class (see DESIGN.md §5 for the
  rationale and soundness argument).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core import relations
from repro.core.names import (
    ClassName,
    GenName,
    ImplicitName,
    Label,
    check_label,
    name,
    names,
    sort_key,
)
from repro.core.participation import Participation, glb_all, leq
from repro.core.schema import Arrow, Schema, SpecEdge
from repro.exceptions import (
    IncompatibleSchemasError,
    NotProperError,
    ParticipationError,
    SchemaValidationError,
)
from repro.perf.memo import MemoCache

# Bounded memo for the refined ordering (see repro.perf): annotated
# schemas are immutable with precomputed hashes, so entries never go
# stale and the bound is purely a memory ceiling.
_ANNOTATED_LEQ_CACHE = MemoCache("lower.annotated_leq", maxsize=16384)
_MISS = MemoCache.MISS

__all__ = [
    "AnnotatedSchema",
    "annotated_leq",
    "complete_classes",
    "lower_merge",
    "lower_properize",
    "lower_properness_violations",
]

NameLike = Union[ClassName, str]
AnnotatedArrowLike = Union[
    Tuple[NameLike, Label, NameLike],
    Tuple[NameLike, Label, NameLike, Participation],
]


def _stronger(
    left: Participation, right: Participation
) -> Participation:
    """Combine two derivations of the same present arrow (REQUIRED wins)."""
    if Participation.REQUIRED in (left, right):
        return Participation.REQUIRED
    return Participation.OPTIONAL


def _close_annotations(
    table: Dict[Arrow, Participation], spec: AbstractSet[SpecEdge]
) -> Dict[Arrow, Participation]:
    """Close a participation table under the annotated W1'/W2' rules.

    * **W2'** — a present arrow ``p --a--> s`` yields ``p --a--> r`` for
      every ``s ==> r``, at the same constraint (a value in ``s`` is a
      value in ``r``; if the value must exist it still must).
    * **W1'** — a **required** arrow ``q --a--> r`` yields a required
      ``p --a--> r`` for every ``p ==> q`` (instances of ``p`` are
      instances of ``q``).  Optional arrows do *not* propagate down:
      a specialization may forbid an attribute its superclass merely
      allows.
    """
    above = relations.successors_map(spec)
    below = relations.predecessors_map(spec)
    closed: Dict[Arrow, Participation] = {}
    pending = list(table.items())
    while pending:
        (source, label, target), constraint = pending.pop()
        existing = closed.get((source, label, target))
        if existing is not None and _stronger(existing, constraint) == existing:
            continue
        combined = (
            constraint if existing is None else _stronger(existing, constraint)
        )
        closed[(source, label, target)] = combined
        for sup in above.get(target, {target}):
            if sup != target:
                pending.append(((source, label, sup), combined))
        if combined == Participation.REQUIRED:
            for sub in below.get(source, {source}):
                if sub != source:
                    pending.append(((sub, label, target), Participation.REQUIRED))
    return closed


class AnnotatedSchema:
    """A schema whose arrows carry participation constraints.

    Arrows absent from the table have constraint ``0`` (the paper's
    convention); present arrows are ``0/1`` or ``1``.  The structure is
    immutable and closed under the annotated rules documented on
    :func:`_close_annotations`.
    """

    __slots__ = ("_classes", "_spec", "_participation", "_hash")

    def __init__(
        self,
        classes: AbstractSet[ClassName],
        spec: AbstractSet[SpecEdge],
        participation: Mapping[Arrow, Participation],
    ):
        classes = frozenset(classes)
        spec = frozenset(spec)
        table = dict(participation)
        for (source, label, target), constraint in table.items():
            check_label(label)
            if source not in classes or target not in classes:
                raise SchemaValidationError(
                    f"arrow {source} --{label}--> {target} mentions a class "
                    "outside C"
                )
            if constraint == Participation.ABSENT:
                raise ParticipationError(
                    "present arrows must be OPTIONAL or REQUIRED; encode "
                    "constraint 0 by omitting the arrow"
                )
        if not relations.is_partial_order(spec, classes):
            raise SchemaValidationError(
                "specialization relation is not a partial order over C"
            )
        for sub, sup in spec:
            if sub not in classes or sup not in classes:
                raise SchemaValidationError(
                    f"specialization {sub} ==> {sup} mentions a class outside C"
                )
        if _close_annotations(table, spec) != table:
            raise SchemaValidationError(
                "participation table is not closed under the annotated "
                "W1'/W2' rules; use AnnotatedSchema.build"
            )
        object.__setattr__(self, "_classes", classes)
        object.__setattr__(self, "_spec", spec)
        object.__setattr__(self, "_participation", dict(table))
        object.__setattr__(
            self,
            "_hash",
            hash((classes, spec, frozenset(table.items()))),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        classes: Iterable[NameLike] = (),
        arrows: Iterable[AnnotatedArrowLike] = (),
        spec: Iterable[Tuple[NameLike, NameLike]] = (),
    ) -> "AnnotatedSchema":
        """Build from raw data, closing specializations and annotations.

        Arrow entries are ``(source, label, target)`` — defaulting to
        ``REQUIRED``, so plain schemas embed unchanged — or
        ``(source, label, target, participation)``.
        """
        class_set: Set[ClassName] = set(names(classes))
        table: Dict[Arrow, Participation] = {}
        for entry in arrows:
            if len(entry) == 3:
                source, label, target = entry  # type: ignore[misc]
                constraint = Participation.REQUIRED
            elif len(entry) == 4:
                source, label, target, constraint = entry  # type: ignore[misc]
                if isinstance(constraint, str):
                    constraint = Participation.parse(constraint)
            else:
                raise SchemaValidationError(
                    f"annotated arrows have 3 or 4 components, got {entry!r}"
                )
            if constraint == Participation.ABSENT:
                continue
            arrow = (name(source), check_label(label), name(target))
            class_set.update((arrow[0], arrow[2]))
            existing = table.get(arrow)
            table[arrow] = (
                constraint if existing is None else _stronger(existing, constraint)
            )
        spec_set = {(name(a), name(b)) for a, b in spec}
        for sub, sup in spec_set:
            class_set.update((sub, sup))
        closed_spec = relations.reflexive_transitive_closure(spec_set, class_set)
        if not relations.is_antisymmetric(closed_spec):
            cycle = relations.find_cycle(closed_spec) or ()
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in cycle),
                cycle=cycle,
            )
        closed_table = _close_annotations(table, closed_spec)
        return cls(frozenset(class_set), closed_spec, closed_table)

    @classmethod
    def from_schema(
        cls,
        schema: Schema,
        default: Participation = Participation.REQUIRED,
    ) -> "AnnotatedSchema":
        """Embed a plain schema: every arrow gets constraint *default*.

        With the default ``REQUIRED`` this matches the paper's reading
        of plain arrows ("any instance of the class p must have an
        a-attribute").
        """
        if default == Participation.ABSENT:
            raise ParticipationError("cannot embed arrows at constraint 0")
        return cls.build(
            classes=schema.classes,
            arrows=[(s, a, t, default) for s, a, t in schema.arrows],
            spec=schema.spec,
        )

    @classmethod
    def empty(cls) -> "AnnotatedSchema":
        """The annotated schema with no classes."""
        return cls(frozenset(), frozenset(), {})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """The class set ``C``."""
        return self._classes

    @property
    def spec(self) -> FrozenSet[SpecEdge]:
        """The specialization partial order (reflexive & transitive)."""
        return self._spec

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("AnnotatedSchema is immutable")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, AnnotatedSchema):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self._classes == other._classes
            and self._spec == other._spec
            and self._participation == other._participation
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        required = sum(
            1
            for v in self._participation.values()
            if v == Participation.REQUIRED
        )
        return (
            f"AnnotatedSchema(|C|={len(self._classes)}, "
            f"|E|={len(self._participation)} "
            f"({required} required), |S|={len(self._spec)})"
        )

    def participation_of(
        self, source: NameLike, label: Label, target: NameLike
    ) -> Participation:
        """The constraint on an arrow (``ABSENT`` when not present)."""
        arrow = (name(source), label, name(target))
        return self._participation.get(arrow, Participation.ABSENT)

    def present_arrows(self) -> FrozenSet[Arrow]:
        """Arrows with constraint ``0/1`` or ``1``."""
        return frozenset(self._participation)

    def required_arrows(self) -> FrozenSet[Arrow]:
        """Arrows with constraint ``1``."""
        return frozenset(
            a
            for a, v in self._participation.items()
            if v == Participation.REQUIRED
        )

    def optional_arrows(self) -> FrozenSet[Arrow]:
        """Arrows with constraint ``0/1``."""
        return frozenset(
            a
            for a, v in self._participation.items()
            if v == Participation.OPTIONAL
        )

    def participation_table(self) -> Dict[Arrow, Participation]:
        """A copy of the full arrow-constraint table."""
        return dict(self._participation)

    def reach_present(self, cls: NameLike, label: Label) -> FrozenSet[ClassName]:
        """All present targets of ``cls``'s *label*-arrows."""
        p = name(cls)
        return frozenset(
            t for (s, a, t) in self._participation if s == p and a == label
        )

    def labels(self) -> FrozenSet[Label]:
        """Every label on a present arrow."""
        return frozenset(a for (_s, a, _t) in self._participation)

    def is_spec(self, sub: NameLike, sup: NameLike) -> bool:
        """Does ``sub ==> sup`` hold?"""
        return (name(sub), name(sup)) in self._spec

    def required_schema(self) -> Schema:
        """The plain weak schema of required arrows.

        Required arrows propagate exactly like weak-schema arrows, so
        this projection is always a valid :class:`Schema`.
        """
        return Schema(self._classes, self.required_arrows(), self._spec)

    def min_classes(self, subset: Iterable[NameLike]) -> FrozenSet[ClassName]:
        """``MinS(X)`` relative to this schema's specialization order."""
        return relations.minimal_elements(names(subset), self._spec)

    def with_classes(self, extra: Iterable[NameLike]) -> "AnnotatedSchema":
        """Add isolated classes (the section 6 completion step)."""
        additions = names(extra) - self._classes
        if not additions:
            return self
        return AnnotatedSchema(
            self._classes | additions,
            self._spec | {(c, c) for c in additions},
            self._participation,
        )

    def with_spec_edges(
        self, edges: Iterable[Tuple[NameLike, NameLike]]
    ) -> "AnnotatedSchema":
        """Add specialization edges (closures recomputed)."""
        return AnnotatedSchema.build(
            classes=self._classes,
            arrows=[
                (s, a, t, v) for (s, a, t), v in self._participation.items()
            ],
            spec=set(self._spec) | {(name(a), name(b)) for a, b in edges},
        )


def annotated_leq(left: AnnotatedSchema, right: AnnotatedSchema) -> bool:
    """The refined information ordering of section 6.

    ``left ⊑ right`` iff ``C_left ⊆ C_right``, ``S_left ⊆ S_right`` and
    for every arrow over *left*'s classes the participation constraints
    satisfy ``K_left(e) ≤ K_right(e)`` in the Figure 11 order — where an
    arrow absent over known classes means constraint ``0``, which is
    maximal information, not ignorance.

    Memoized on the operand pair; lower-merge pipelines and the GLB
    property checks probe the same pairs repeatedly.
    """
    if left is right:
        return True
    key = (left, right)
    cached = _ANNOTATED_LEQ_CACHE.get(key)
    if cached is not _MISS:
        return cached
    return _ANNOTATED_LEQ_CACHE.put(key, _annotated_leq_cold(left, right))


def _annotated_leq_cold(left: AnnotatedSchema, right: AnnotatedSchema) -> bool:
    if not (left.classes <= right.classes and left.spec <= right.spec):
        return False
    table_left = left._participation
    table_right = right._participation
    known = left.classes
    for arrow, constraint in table_left.items():
        if not leq(constraint, table_right.get(arrow, Participation.ABSENT)):
            return False
    for arrow, constraint in table_right.items():
        source, _label, target = arrow
        if source in known and target in known and arrow not in table_left:
            # left says ABSENT (constraint 0); right must agree.
            if not leq(Participation.ABSENT, constraint):
                return False
    return True


def complete_classes(
    schemas: Sequence[AnnotatedSchema],
    import_specializations: bool = False,
) -> List[AnnotatedSchema]:
    """Give every schema the union class set (section 6's preparation).

    By default foreign classes arrive isolated.  With
    *import_specializations* each schema also adopts the other schemas'
    specialization edges that touch classes it lacked — sound for lower
    merging because a coerced instance populates imported classes with
    empty extents (see DESIGN.md §5).  Raises
    :class:`~repro.exceptions.IncompatibleSchemasError` if importing
    creates a specialization cycle.
    """
    all_classes: Set[ClassName] = set()
    for schema in schemas:
        all_classes |= schema.classes
    completed = []
    for schema in schemas:
        extended = schema.with_classes(all_classes)
        if import_specializations:
            foreign: Set[SpecEdge] = set()
            for other in schemas:
                if other is schema:
                    continue
                for sub, sup in other.spec:
                    if sub not in schema.classes or sup not in schema.classes:
                        foreign.add((sub, sup))
            if foreign:
                extended = extended.with_spec_edges(foreign)
        completed.append(extended)
    return completed


def lower_merge(
    *schemas: AnnotatedSchema,
    import_specializations: bool = False,
) -> AnnotatedSchema:
    """The weak lower merge of section 6 — a greatest lower bound.

    After class completion, the merged specialization relation is the
    intersection of the inputs' relations and every arrow's constraint
    is the GLB of its constraints across inputs (``ABSENT`` when an
    input lacks it).  The result is below every completed input under
    :func:`annotated_leq`, and any common lower bound is below it —
    both properties are machine-checked in the test suite.
    """
    if not schemas:
        return AnnotatedSchema.empty()
    completed = complete_classes(list(schemas), import_specializations)
    merged_classes = completed[0].classes
    merged_spec = frozenset.intersection(*(s.spec for s in completed))
    all_arrows: Set[Arrow] = set()
    for schema in completed:
        all_arrows |= schema.present_arrows()
    # Direct table lookups instead of per-arrow accessor calls: on wide
    # federations this loop dominates, and the method-call overhead
    # (name coercion included) is a measurable constant factor.
    tables = [schema._participation for schema in completed]
    absent = Participation.ABSENT
    table: Dict[Arrow, Participation] = {}
    for arrow in all_arrows:
        combined = glb_all(t.get(arrow, absent) for t in tables)
        if combined != absent:
            table[arrow] = combined
    # The pointwise GLB of closed tables is closed (each rule's premise
    # in the merge implies the premise in some/all inputs — see module
    # docstring), so direct construction is safe; the constructor
    # re-verifies.
    return AnnotatedSchema(merged_classes, merged_spec, table)


def lower_properness_violations(
    schema: AnnotatedSchema,
) -> List[Tuple[ClassName, Label, FrozenSet[ClassName]]]:
    """Arrow bundles with no least present target — the lower analogue
    of :func:`repro.core.proper.properness_violations`."""
    found = []
    seen: Set[Tuple[ClassName, Label]] = set()
    for (source, label, _target) in schema.present_arrows():
        if (source, label) in seen:
            continue
        seen.add((source, label))
        targets = schema.reach_present(source, label)
        if relations.least_element(targets, schema.spec) is None:
            found.append((source, label, schema.min_classes(targets)))
    found.sort(key=lambda item: (sort_key(item[0]), item[1]))
    return found


def _expand_gen_members(
    alternatives: FrozenSet[ClassName],
    base_spec: FrozenSet[SpecEdge],
) -> FrozenSet[ClassName]:
    """Canonical member set for a generalization of *alternatives*.

    Nested generalization classes are expanded into their members and
    the result is reduced to its maximal elements under the gen-free
    part of the specialization order.  Two alternative sets with the
    same downward denotation therefore always canonicalize to the same
    member set — which is what keeps the derived specialization edges
    antisymmetric across properization rounds.
    """
    expanded: Set[ClassName] = set()
    frontier = list(alternatives)
    while frontier:
        cls = frontier.pop()
        if isinstance(cls, GenName):
            frontier.extend(cls.members)
        else:
            expanded.add(cls)
    return relations.maximal_elements(expanded, base_spec)


def lower_properize(schema: AnnotatedSchema) -> AnnotatedSchema:
    """Repair canonicality by generalizing conflicting targets upward.

    Our formalization of the paper's sketch (section 6; DESIGN.md §5):
    for every ``(p, a)`` whose present targets have no least element,
    the minimal alternatives ``M`` are *alternative typings* — the
    value, when present, lies in **some** member of ``M``.  We therefore

    The repair distinguishes the two ways a reach set can lack a least
    element, because they mean different things:

    * **required-vs-required** — two *required* arrows with incomparable
      minimal targets say the value lies in **both** targets, an
      intersection constraint; the repair adds an upper-merge-style
      :class:`~repro.core.names.ImplicitName` class *below* the minimal
      required targets and a required canonical arrow to it.  Nothing
      is deleted (the annotated closure would resurrect deletions of
      required arrows from their ancestor copies anyway).
    * **optional alternatives** — optional arrows to incomparable
      targets are *alternative typings*; with no required typing in
      play they are replaced by one optional arrow to a generalization
      class ``Gen(M*)`` above the canonical (expanded, maximal-element)
      member set ``M*``; when a required typing exists the conflicting
      optional refinements are simply dropped — a sound weakening for
      a lower bound, since the required typing already covers the
      value.

    All generalization-class specialization edges are re-derived each
    round from *denotation containment* (the union of the members'
    gen-free down-sets): ``p ==> Gen`` when ``p`` lies in the
    denotation, ``Gen ==> p`` when every member specializes ``p``,
    ``Gen1 ==> Gen2`` on strict containment.  New generalization
    classes receive the arrows their members unanimously support, at
    the GLB of their constraints.

    The construction iterates until no violations remain; each round
    either strictly removes optional arrows (which the closure cannot
    resurrect) or adds a class from a finite name space, so it
    terminates.
    """
    current = schema
    for _round in range(1 + 2 ** min(len(schema.classes), 16)):
        violations = lower_properness_violations(current)
        if not violations:
            return current
        base_spec = frozenset(
            (a, b)
            for a, b in current.spec
            if not isinstance(a, GenName) and not isinstance(b, GenName)
        )
        base_classes = frozenset(
            c for c in current.classes if not isinstance(c, GenName)
        )
        table = current.participation_table()
        spec_extra: Set[SpecEdge] = set()
        new_classes = set(current.classes)
        created_this_round: Set[GenName] = set()

        for source, label, minimal in violations:
            reach = current.reach_present(source, label)
            required_targets = frozenset(
                t
                for t in reach
                if table.get((source, label, t)) == Participation.REQUIRED
            )
            required_min = relations.minimal_elements(
                required_targets, current.spec
            )
            if len(required_min) > 1:
                # Intersection constraint: implicit class below.
                intersection = ImplicitName(required_min)
                new_classes.add(intersection)
                for member in required_min:
                    spec_extra.add((intersection, member))
                table[(source, label, intersection)] = Participation.REQUIRED
                continue
            optional_min = [
                m
                for m in minimal
                if table.get((source, label, m)) == Participation.OPTIONAL
            ]
            if required_targets:
                # A required typing covers the value; conflicting
                # optional refinements are dropped (sound weakening).
                for target in optional_min:
                    table.pop((source, label, target), None)
                continue
            # Pure optional conflict: generalize the alternatives up.
            members = _expand_gen_members(minimal, base_spec)
            for target in optional_min:
                table.pop((source, label, target), None)
            if len(members) == 1:
                (canonical,) = members
            else:
                canonical = GenName(members)
                if canonical not in new_classes:
                    created_this_round.add(canonical)
                new_classes.add(canonical)
            table[(source, label, canonical)] = Participation.OPTIONAL

        # Derive every gen-related specialization edge from scratch.
        gens = sorted(
            (c for c in new_classes if isinstance(c, GenName)),
            key=sort_key,
        )
        down = relations.predecessors_map(base_spec)

        def denotation(gen: GenName) -> FrozenSet[ClassName]:
            collected: Set[ClassName] = set()
            for member in gen.members:
                collected.add(member)
                collected.update(down.get(member, ()))
            return frozenset(collected)

        denot = {gen: denotation(gen) for gen in gens}
        new_spec: Set[SpecEdge] = set(base_spec) | spec_extra
        for gen in gens:
            for member in gen.members:
                new_spec.add((member, gen))
            for cls in base_classes:
                if cls in denot[gen]:
                    new_spec.add((cls, gen))
                if all((m, cls) in base_spec for m in gen.members):
                    new_spec.add((gen, cls))
            for other in gens:
                if other != gen and denot[gen] < denot[other]:
                    new_spec.add((gen, other))

        # Arrows the members unanimously support, at the GLB.  Only for
        # generalization classes created in *this* round: re-running the
        # rule for older classes would resurrect exactly the arrows a
        # later violation-replacement removed, and the repair loop would
        # never converge.
        for gen in sorted(created_this_round, key=sort_key):
            member_list = sorted(gen.members, key=sort_key)
            by_member = [
                {(a, t) for (s, a, t) in table if s == m}
                for m in member_list
            ]
            for label, target in set.intersection(*by_member):
                key = (gen, label, target)
                if key not in table:
                    table[key] = glb_all(
                        table[(m, label, target)] for m in member_list
                    )

        current = AnnotatedSchema.build(
            classes=new_classes,
            arrows=[(s, a, t, v) for (s, a, t), v in table.items()],
            spec=new_spec,
        )
    raise NotProperError(
        "lower properization did not converge (pathological input)"
    )
