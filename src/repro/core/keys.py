"""Key constraints and their behaviour under merging (section 5).

A *key* of a class ``p`` is a set of labels of arrows out of ``p`` whose
values jointly determine object identity; a *superkey* is any superset
of a key.  The paper works with the family ``SK(p)`` of all superkeys,
which is upward closed; we represent such a family compactly by its
antichain of minimal elements (:class:`KeyFamily`).

The interaction with specialization is the single constraint

    ``p ==> q``  implies  ``SK(p) ⊇ SK(q)``

("all the keys for q are keys (or superkeys) for p").  For a merge the
paper defines an assignment ``SK`` to be *satisfactory* when it contains
every input assignment pointwise and satisfies the constraint, observes
that satisfactory assignments are closed under pointwise intersection,
and concludes there is a unique minimal one.  We compute it directly
(:func:`minimal_satisfactory_assignment`) as the downward propagation of
input keys along the merged specialization order, and the property tests
verify both satisfaction and minimality against the definition.

:class:`KeyedSchema` bundles a schema with a key assignment and
validates the structural side conditions (keys mention only labels of
arrows out of the class; specialization monotonicity).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.core.consistency import ConsistencyRelation
from repro.core.merge import upper_merge
from repro.core.names import ClassName, Label, name
from repro.core.schema import Schema
from repro.exceptions import KeyConstraintError

__all__ = [
    "KeyFamily",
    "KeyedSchema",
    "minimal_satisfactory_assignment",
    "is_satisfactory",
    "merge_keyed",
]

NameLike = Union[ClassName, str]
KeySet = FrozenSet[Label]


def _freeze_key(key: Iterable[Label]) -> KeySet:
    frozen = frozenset(key)
    for label in frozen:
        if not isinstance(label, str) or not label:
            raise KeyConstraintError(
                f"key components must be non-empty labels, got {label!r}"
            )
    return frozen


def _minimize(keys: Iterable[KeySet]) -> FrozenSet[KeySet]:
    """Keep only the ⊆-minimal sets: the antichain representing the family."""
    key_list = sorted(set(keys), key=lambda k: (len(k), sorted(k)))
    kept: list = []
    for key in key_list:
        if not any(existing <= key for existing in kept):
            kept.append(key)
    return frozenset(kept)


class KeyFamily:
    """An upward-closed family of superkeys, stored as its minimal antichain.

    ``KeyFamily([])`` is the *empty* family — the class has no key at
    all, which is how the paper models object identity ("by relaxing
    this constraint... we can capture models in which there is a notion
    of object identity").  ``KeyFamily([set()])`` is the family of *all*
    label sets (the empty set is a key: at most one instance exists).
    """

    __slots__ = ("_min_keys",)

    def __init__(self, keys: Iterable[Iterable[Label]] = ()):
        object.__setattr__(
            self, "_min_keys", _minimize(_freeze_key(k) for k in keys)
        )

    @classmethod
    def none(cls) -> "KeyFamily":
        """The empty family: pure object identity, no keys."""
        return cls()

    @classmethod
    def of(cls, *keys: Iterable[Label]) -> "KeyFamily":
        """Convenience variadic constructor: ``KeyFamily.of({"ssn"})``."""
        return cls(keys)

    @property
    def min_keys(self) -> FrozenSet[KeySet]:
        """The antichain of minimal keys."""
        return self._min_keys

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("KeyFamily is immutable")

    def is_empty(self) -> bool:
        """Is this the no-keys family?"""
        return not self._min_keys

    def is_superkey(self, labels: Iterable[Label]) -> bool:
        """Does *labels* belong to the (upward-closed) family?"""
        label_set = frozenset(labels)
        return any(key <= label_set for key in self._min_keys)

    def labels_used(self) -> FrozenSet[Label]:
        """Every label mentioned by some minimal key."""
        return frozenset(l for key in self._min_keys for l in key)

    def union(self, other: "KeyFamily") -> "KeyFamily":
        """The smallest family containing both — pointwise ``SK ∪ SK'``."""
        return KeyFamily(self._min_keys | other._min_keys)

    def intersection(self, other: "KeyFamily") -> "KeyFamily":
        """The family ``SK ∩ SK'`` used in the paper's minimality argument.

        A label set is in the intersection iff it extends a key of each
        family, so the minimal antichain consists of the minimized
        pairwise unions.
        """
        return KeyFamily(
            k1 | k2 for k1 in self._min_keys for k2 in other._min_keys
        )

    def __or__(self, other: "KeyFamily") -> "KeyFamily":
        return self.union(other)

    def __and__(self, other: "KeyFamily") -> "KeyFamily":
        return self.intersection(other)

    def contains_family(self, other: "KeyFamily") -> bool:
        """Is ``other ⊆ self`` as upward-closed families (``self ⊇ other``)?"""
        return all(self.is_superkey(key) for key in other._min_keys)

    def __le__(self, other: "KeyFamily") -> bool:
        return other.contains_family(self)

    def __ge__(self, other: "KeyFamily") -> bool:
        return self.contains_family(other)

    def __eq__(self, other) -> bool:
        if not isinstance(other, KeyFamily):
            return NotImplemented
        return self._min_keys == other._min_keys

    def __hash__(self) -> int:
        return hash(("KeyFamily", self._min_keys))

    def __iter__(self) -> Iterator[KeySet]:
        return iter(sorted(self._min_keys, key=lambda k: (len(k), sorted(k))))

    def __len__(self) -> int:
        return len(self._min_keys)

    def __repr__(self) -> str:
        pretty = ", ".join(
            "{" + ", ".join(sorted(k)) + "}"
            for k in sorted(self._min_keys, key=lambda k: (len(k), sorted(k)))
        )
        return f"KeyFamily([{pretty}])"


Assignment = Dict[ClassName, KeyFamily]


def _coerce_assignment(
    schema: Schema, assignment: Mapping[NameLike, KeyFamily]
) -> Assignment:
    table: Assignment = {}
    for cls_raw, family in assignment.items():
        cls = name(cls_raw)
        if cls not in schema.classes:
            raise KeyConstraintError(
                f"key assignment mentions unknown class {cls}"
            )
        if not isinstance(family, KeyFamily):
            family = KeyFamily(family)
        available = schema.out_labels(cls)
        for key in family.min_keys:
            if not key <= available:
                missing = sorted(key - available)
                raise KeyConstraintError(
                    f"key {sorted(key)} of {cls} uses label(s) {missing} "
                    f"that are not arrows out of {cls}"
                )
        table[cls] = family
    return table


class KeyedSchema:
    """A schema together with a key assignment ``SK``.

    Classes missing from the assignment have the empty family (object
    identity).  Construction validates the section-5 side conditions;
    pass ``check_spec_monotone=False`` to skip the
    ``p ==> q ⟹ SK(p) ⊇ SK(q)`` check when building raw inputs whose
    assignment will only become monotone after merging.
    """

    __slots__ = ("_schema", "_keys")

    def __init__(
        self,
        schema: Schema,
        keys: Mapping[NameLike, KeyFamily] = (),
        check_spec_monotone: bool = True,
    ):
        keys = dict(keys) if not isinstance(keys, Mapping) else keys
        table = _coerce_assignment(schema, keys)
        if check_spec_monotone:
            for sub, sup in schema.strict_spec():
                sub_family = table.get(sub, KeyFamily.none())
                sup_family = table.get(sup, KeyFamily.none())
                if not sub_family.contains_family(sup_family):
                    raise KeyConstraintError(
                        f"{sub} ==> {sup} but SK({sub}) does not contain "
                        f"SK({sup}) = {sup_family!r}"
                    )
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_keys", table)

    @property
    def schema(self) -> Schema:
        """The underlying schema."""
        return self._schema

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("KeyedSchema is immutable")

    def keys_of(self, cls: NameLike) -> KeyFamily:
        """``SK(cls)`` (the empty family when no keys were declared)."""
        return self._keys.get(name(cls), KeyFamily.none())

    def declared_classes(self) -> FrozenSet[ClassName]:
        """Classes with a non-empty key family."""
        return frozenset(c for c, f in self._keys.items() if not f.is_empty())

    def assignment(self) -> Assignment:
        """A copy of the full assignment table."""
        return dict(self._keys)

    def __eq__(self, other) -> bool:
        if not isinstance(other, KeyedSchema):
            return NotImplemented
        mine = {c: f for c, f in self._keys.items() if not f.is_empty()}
        theirs = {c: f for c, f in other._keys.items() if not f.is_empty()}
        return self._schema == other._schema and mine == theirs

    def __hash__(self) -> int:
        mine = frozenset(
            (c, f) for c, f in self._keys.items() if not f.is_empty()
        )
        return hash((self._schema, mine))

    def __repr__(self) -> str:
        return (
            f"KeyedSchema({self._schema!r}, "
            f"{len(self.declared_classes())} keyed class(es))"
        )


def is_satisfactory(
    merged: Schema,
    assignment: Mapping[ClassName, KeyFamily],
    inputs: Sequence[KeyedSchema],
) -> bool:
    """Is *assignment* satisfactory for the merge of *inputs* (section 5)?

    Checks the paper's three conditions: each input assignment is
    contained pointwise, and ``SK(p) ⊇ SK(q)`` whenever ``p ==> q`` in
    the merged schema.
    """

    def family(cls: ClassName) -> KeyFamily:
        return assignment.get(cls, KeyFamily.none())

    for keyed in inputs:
        for cls in keyed.schema.classes:
            if not family(cls).contains_family(keyed.keys_of(cls)):
                return False
    for sub, sup in merged.strict_spec():
        if not family(sub).contains_family(family(sup)):
            return False
    return True


def minimal_satisfactory_assignment(
    merged: Schema, inputs: Sequence[KeyedSchema]
) -> Assignment:
    """The unique minimal satisfactory assignment for a merged schema.

    ``SK(p)`` is the union of every input's key family at every class
    ``q`` with ``p ==> q`` — the least fixpoint of the two satisfaction
    conditions.  Because the merged specialization order is transitive
    and reflexive, one pass over ``S`` suffices.
    """
    result: Assignment = {}
    for p, q in merged.spec:  # includes (p, p): the pointwise condition
        combined = result.get(p, KeyFamily.none())
        for keyed in inputs:
            if q in keyed.schema.classes:
                combined = combined | keyed.keys_of(q)
        if not combined.is_empty():
            result[p] = combined
    # Validate structurally: propagated keys must still be arrow labels.
    for cls, family in result.items():
        available = merged.out_labels(cls)
        for key in family.min_keys:
            if not key <= available:
                raise KeyConstraintError(
                    f"propagated key {sorted(key)} of {cls} is not a set of "
                    f"arrow labels out of {cls} in the merged schema"
                )
    return result


def merge_keyed(
    *inputs: KeyedSchema,
    assertions: Iterable[Schema] = (),
    consistency: Optional[ConsistencyRelation] = None,
) -> KeyedSchema:
    """Merge keyed schemas: upper merge + minimal satisfactory keys.

    The schema part is the ordinary upper merge of section 4; the key
    part is the unique minimal satisfactory assignment of section 5.
    Implicit classes acquire keys through the specialization condition
    (they specialize their member classes, whose arrows — hence key
    labels — they inherit).
    """
    merged = upper_merge(
        *(keyed.schema for keyed in inputs),
        assertions=assertions,
        consistency=consistency,
    )
    assignment = minimal_satisfactory_assignment(merged, list(inputs))
    return KeyedSchema(merged, assignment)
