"""Core formalism: weak/proper schemas, orderings, merges, keys."""
