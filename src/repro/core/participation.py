"""The semilattice of participation constraints (section 6, Figure 11).

Lower merges need to express that an arrow *may* be present without
being required.  The paper attaches one of three constraints to every
arrow:

* ``1``   — every instance of the source **must** have the arrow;
* ``0/1`` — an instance **may** have the arrow;
* ``0``   — an instance **may not** (must not) have the arrow, which is
  also the reading of an arrow that is simply absent from a schema.

Ordered by information content, ``0/1`` is the bottom (it permits every
behaviour) and ``0`` and ``1`` are the two maximal, mutually
incomparable elements — Figure 11's ∨-shaped semilattice.  The merge
rule of section 6 takes the **greatest lower bound**: a required arrow
merged with a forbidden one becomes optional, matching the intuition
that the lower merge must admit the instances of both schemas.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.exceptions import ParticipationError

__all__ = ["Participation", "glb", "lub", "leq", "glb_all"]


class Participation(enum.Enum):
    """One of the three participation constraints of Figure 11."""

    ABSENT = "0"
    OPTIONAL = "0/1"
    REQUIRED = "1"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Participation":
        """Parse ``"0"``, ``"0/1"`` or ``"1"`` (as the paper writes them)."""
        for member in cls:
            if member.value == text:
                return member
        raise ParticipationError(
            f"not a participation constraint: {text!r} (expected 0, 0/1 or 1)"
        )


#: The strict order: OPTIONAL is below both maximal elements.
_STRICTLY_BELOW = {
    (Participation.OPTIONAL, Participation.ABSENT),
    (Participation.OPTIONAL, Participation.REQUIRED),
}


def leq(left: Participation, right: Participation) -> bool:
    """The Figure 11 order: ``left ≤ right`` (right is at least as informative)."""
    return left == right or (left, right) in _STRICTLY_BELOW


def glb(left: Participation, right: Participation) -> Participation:
    """Greatest lower bound — the section 6 merge rule for arrows.

    ``glb(x, x) = x`` and any disagreement resolves to ``OPTIONAL``.
    """
    if left == right:
        return left
    return Participation.OPTIONAL


def glb_all(values: Iterable[Participation]) -> Participation:
    """GLB of a non-empty collection of constraints."""
    collected = list(values)
    if not collected:
        raise ParticipationError("glb of an empty collection is undefined")
    first = collected[0]
    return first if all(v == first for v in collected[1:]) else Participation.OPTIONAL


def lub(left: Participation, right: Participation) -> Optional[Participation]:
    """Least upper bound, when it exists.

    ``ABSENT`` and ``REQUIRED`` have no common upper bound (a schema
    cannot simultaneously require and forbid an arrow), so the function
    returns ``None`` there — the order is only a meet-semilattice, which
    is exactly why the paper builds *lower* merges from it.
    """
    if leq(left, right):
        return right
    if leq(right, left):
        return left
    return None
