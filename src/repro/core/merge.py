"""The upper merge — the paper's headline operation (sections 3 and 4).

The merge of a compatible collection of schemas is defined in two
stages:

1. the **weak merge** ``⊔`` — the least upper bound of the collection in
   the information ordering (Proposition 4.1, :func:`weak_merge`);
2. **properization** — converting that weak schema into a proper one by
   introducing origin-named implicit classes
   (:func:`repro.core.implicit.properize`).

:func:`upper_merge` composes the two, optionally folding in user
assertions (section 3) and vetting implicit classes against a
consistency relationship (section 4.2).  Both failure modes the paper
identifies surface as distinct exceptions:
:class:`~repro.exceptions.IncompatibleSchemasError` when the combined
specializations are cyclic, and
:class:`~repro.exceptions.InconsistentSchemasError` when an implicit
class conflates classes the consistency relationship keeps apart.

Associativity and commutativity hold by construction (a least upper
bound cannot depend on argument order); :class:`MergeReport` exposes the
intermediate artifacts so tools, benchmarks and the test suite can
inspect each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.core.consistency import ConsistencyRelation, check_consistency
from repro.core.implicit import (
    implicit_classes_of,
    implicit_sets,
    properize,
    strip_implicits,
)
from repro.core.names import ClassName
from repro.core.ordering import join_all
from repro.core.schema import Schema

__all__ = ["weak_merge", "upper_merge", "merge_report", "MergeReport"]


def weak_merge(*schemas: Schema, assertions: Iterable[Schema] = ()) -> Schema:
    """The weak schema merge ``G1 ⊔ .. ⊔ Gn`` (with assertions folded in).

    This is the pure least-upper-bound stage: the result is a weak
    schema presenting exactly the union of the inputs' information, but
    it may fail condition 1 (canonical classes) and therefore not be
    proper.  Raises
    :class:`~repro.exceptions.IncompatibleSchemasError` when no upper
    bound exists.
    """
    return join_all(list(schemas) + list(assertions))


def upper_merge(
    *schemas: Schema,
    assertions: Iterable[Schema] = (),
    consistency: Optional[ConsistencyRelation] = None,
    strip_derived: bool = True,
) -> Schema:
    """The merge of section 4: weak LUB followed by properization.

    Parameters
    ----------
    schemas:
        The proper (or weak) schemas to merge.  Order is irrelevant.
    assertions:
        Extra elementary schemas (typically from
        :mod:`repro.core.assertions`) stating inter-schema
        relationships.  Because they participate in the same LUB, their
        order is irrelevant too.
    consistency:
        An optional :class:`~repro.core.consistency.ConsistencyRelation`;
        when given, every implicit class the merge would create is
        vetted against it before the result is assembled.
    strip_derived:
        When true (the default), implicit classes surviving from
        *earlier* merges are removed from the inputs and re-derived.
        Implicit classes carry no information of their own (section
        4.2), and because their names record their origin they "can be
        readily identified to allow subsequent merges to take place" —
        this is what makes the iterated binary merge literally equal to
        the n-ary merge (Figure 5's desideratum).  Set it to ``False``
        only to study the intermediate-class behaviour.

    Returns the proper schema ``Ḡ`` where ``G`` is the weak merge.
    """
    if strip_derived:
        schemas = tuple(strip_implicits(g) for g in schemas)
    weak = weak_merge(*schemas, assertions=assertions)
    check_consistency(implicit_sets(weak), consistency)
    return properize(weak)


@dataclass(frozen=True)
class MergeReport:
    """Every intermediate artifact of one merge, for inspection.

    Produced by :func:`merge_report`; used by the CLI (to explain a
    merge to the user), the analysis layer and EXPERIMENTS.md benches.
    """

    #: The input schemas, in the order supplied (informational only).
    inputs: Tuple[Schema, ...]
    #: Assertions folded into the merge.
    assertions: Tuple[Schema, ...]
    #: The weak least upper bound.
    weak: Schema
    #: The final proper schema.
    merged: Schema
    #: Member sets of the implicit classes the properization introduced.
    implicit_members: Tuple[FrozenSet[ClassName], ...] = field(default=())

    @property
    def implicit_classes(self) -> FrozenSet[ClassName]:
        """The invented classes present in the merged schema."""
        return implicit_classes_of(self.merged)

    def summary(self) -> str:
        """A human-readable one-paragraph account of the merge."""
        stats = self.merged.stats()
        lines = [
            f"merged {len(self.inputs)} schema(s) with "
            f"{len(self.assertions)} assertion(s)",
            f"weak merge: {len(self.weak.classes)} classes, "
            f"{len(self.weak.arrows)} arrows, "
            f"{len(self.weak.strict_spec())} strict specializations",
            f"properization introduced {stats['implicit_classes']} "
            "implicit class(es)",
            f"result: {stats['classes']} classes, {stats['arrows']} arrows",
        ]
        return "; ".join(lines)


def merge_report(
    *schemas: Schema,
    assertions: Iterable[Schema] = (),
    consistency: Optional[ConsistencyRelation] = None,
    strip_derived: bool = True,
) -> MergeReport:
    """Run :func:`upper_merge` but keep all intermediate artifacts."""
    assertion_list: List[Schema] = list(assertions)
    inputs = (
        tuple(strip_implicits(g) for g in schemas)
        if strip_derived
        else tuple(schemas)
    )
    weak = weak_merge(*inputs, assertions=assertion_list)
    member_sets = implicit_sets(weak)
    check_consistency(member_sets, consistency)
    merged = properize(weak)
    return MergeReport(
        inputs=tuple(schemas),
        assertions=tuple(assertion_list),
        weak=weak,
        merged=merged,
        implicit_members=tuple(sorted(member_sets, key=lambda s: sorted(map(str, s)))),
    )
