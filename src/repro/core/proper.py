"""Proper schemas: canonical classes and the D1/D2 functional presentation.

Section 2 defines a (proper) schema as a weak schema whose arrow
relation additionally satisfies

* **Condition 1** — if ``p --a--> q1`` and ``p --a--> q2`` then there is
  a class ``s`` with ``s ==> q1``, ``s ==> q2`` and ``p --a--> s``.

Together with W1/W2-closedness this says every non-empty reach set
``R(p, a)`` has a **least** element: the *canonical class* of the
``a``-arrow of ``p``, written ``p -a⇀ s``.

The paper also gives an equivalent *functional* presentation in which
the canonical arrow ``⇀`` is primitive (this is how Motro [1] and
Multibase [2] axiomatise functional schemas):

* **D1** — ``p -a⇀ q1`` and ``p -a⇀ q2`` imply ``q1 = q2`` (the arrow is
  a partial function), and
* **D2** — ``q -a⇀ s`` and ``p ==> q`` imply there is ``r ==> s`` with
  ``p -a⇀ r`` (specializations refine inherited arrows).

This module implements both directions of that equivalence —
:func:`canonical_arrows` extracts ``⇀`` from a proper schema, and
:func:`from_canonical` rebuilds the full relation via
``p --a--> q  iff  ∃s . s ==> q and p -a⇀ s`` — plus the predicates and
diagnostics for properness itself.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core import relations
from repro.core.names import ClassName, Label, name, names, sort_key
from repro.core.schema import Schema, SpecEdge
from repro.exceptions import NotProperError, SchemaValidationError

__all__ = [
    "canonical_class",
    "canonical_arrows",
    "properness_violations",
    "is_proper",
    "check_proper",
    "from_canonical",
    "check_d2",
]

CanonicalMap = Mapping[Tuple[ClassName, Label], ClassName]


def canonical_class(
    schema: Schema, cls: Union[ClassName, str], label: Label
) -> Optional[ClassName]:
    """The canonical class of the *label*-arrow of *cls*, if one exists.

    Returns the least element of ``R(cls, label)`` under the
    specialization order, or ``None`` when the reach set is empty.
    Raises :class:`~repro.exceptions.NotProperError` when the reach set
    is non-empty but has no least element (the schema is only weak at
    this arrow).
    """
    targets = schema.reach(cls, label)
    if not targets:
        return None
    least = relations.least_element(targets, schema.spec)
    if least is None:
        minimal = sorted(schema.min_classes(targets), key=sort_key)
        raise NotProperError(
            f"{name(cls)} --{label}--> has no canonical class; minimal "
            f"targets are {{{', '.join(map(str, minimal))}}}"
        )
    return least


def properness_violations(
    schema: Schema,
) -> List[Tuple[ClassName, Label, FrozenSet[ClassName]]]:
    """Every ``(p, a, MinS(R(p, a)))`` where condition 1 fails.

    The returned minimal-target sets are exactly the witnesses that the
    properization of section 4.2 turns into implicit classes.
    """
    found = []
    spec = schema.spec
    for (cls, label), targets in sorted(
        schema._reach_index().items(),
        key=lambda item: (sort_key(item[0][0]), item[0][1]),
    ):
        if relations.least_element(targets, spec) is None:
            found.append(
                (cls, label, relations.minimal_elements(targets, spec))
            )
    return found


def is_proper(schema: Schema) -> bool:
    """Does *schema* satisfy condition 1 everywhere?

    Conditions 2 and 3 of section 2 coincide with W1 and W2, which every
    :class:`~repro.core.schema.Schema` enforces by construction, so
    properness reduces to the existence of canonical classes.
    """
    return not properness_violations(schema)


def check_proper(schema: Schema) -> Schema:
    """Return *schema* unchanged, or raise with the first violation."""
    violations = properness_violations(schema)
    if violations:
        cls, label, minimal = violations[0]
        pretty = ", ".join(str(m) for m in sorted(minimal, key=sort_key))
        raise NotProperError(
            f"schema is not proper: {cls} --{label}--> has minimal targets "
            f"{{{pretty}}} with no least element "
            f"({len(violations)} violation(s) in total)"
        )
    return schema


def canonical_arrows(schema: Schema) -> Dict[Tuple[ClassName, Label], ClassName]:
    """Extract the partial function ``⇀`` from a proper schema.

    The result maps ``(p, a)`` to the canonical class of the ``a``-arrow
    of ``p``.  D1 holds by construction (it is a dict); D2 holds because
    the schema is proper and W1-closed — both facts are exercised by the
    property tests.
    """
    check_proper(schema)
    table: Dict[Tuple[ClassName, Label], ClassName] = {}
    for cls in schema.classes:
        for label in schema.out_labels(cls):
            least = canonical_class(schema, cls, label)
            if least is not None:
                table[(cls, label)] = least
    return table


def check_d2(
    classes: Iterable[Union[ClassName, str]],
    spec: FrozenSet[SpecEdge],
    canon: CanonicalMap,
) -> None:
    """Verify condition D2 for a functional presentation, raising otherwise.

    D2: if ``q -a⇀ s`` and ``p ==> q`` then some ``r`` with ``r ==> s``
    has ``p -a⇀ r``.
    """
    class_set = names(classes)
    for (q, a), s in canon.items():
        for p in relations.down_set(q, spec):
            r = canon.get((p, a))
            if r is None or (r, s) not in spec:
                raise SchemaValidationError(
                    f"D2 fails: {p} ==> {q} and {q} -{a}⇀ {s}, but "
                    + (
                        f"{p} has no {a}-arrow"
                        if r is None
                        else f"{p} -{a}⇀ {r} and {r} =/=> {s}"
                    )
                )
    for (p, _a), s in canon.items():
        if p not in class_set or s not in class_set:
            raise SchemaValidationError(
                f"canonical arrow {p} ⇀ {s} mentions a class outside C"
            )


def from_canonical(
    classes: Iterable[Union[ClassName, str]],
    spec: Iterable[Tuple[Union[ClassName, str], Union[ClassName, str]]],
    canon: Mapping[Tuple[Union[ClassName, str], Label], Union[ClassName, str]],
) -> Schema:
    """Build the proper schema determined by a functional presentation.

    Given classes, specialization edges (closed automatically) and a
    canonical-arrow map satisfying D1 (by construction) and D2 (checked),
    this realises the paper's translation: ``p --a--> q`` iff there is
    ``s ==> q`` with ``p -a⇀ s``.  The result is guaranteed proper.
    """
    class_set = set(names(classes))
    canon_table: Dict[Tuple[ClassName, Label], ClassName] = {}
    for (p_raw, label), s_raw in canon.items():
        p, s = name(p_raw), name(s_raw)
        class_set.add(p)
        class_set.add(s)
        canon_table[(p, label)] = s
    spec_pairs = {(name(a), name(b)) for a, b in spec}
    for a, b in spec_pairs:
        class_set.add(a)
        class_set.add(b)
    closed_spec = relations.reflexive_transitive_closure(spec_pairs, class_set)
    if not relations.is_antisymmetric(closed_spec):
        cycle = relations.find_cycle(closed_spec) or ()
        raise SchemaValidationError(
            "specialization edges form a cycle: "
            + " ==> ".join(str(c) for c in cycle)
        )
    check_d2(class_set, closed_spec, canon_table)
    arrows = set()
    for (p, label), s in canon_table.items():
        for q in relations.up_set(s, closed_spec):
            arrows.add((p, label, q))
    schema = Schema(frozenset(class_set), frozenset(arrows), closed_spec)
    return check_proper(schema)
