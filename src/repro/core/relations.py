"""A small toolkit for finite binary relations used throughout the core.

The specialization relation ``S`` of a schema is required to be a
partial order — reflexive, transitive and antisymmetric (section 2) —
and the merge constructs ``(S1 ∪ S2)*`` and checks its antisymmetry
(Proposition 4.1).  This module provides those operations on relations
represented as ``frozenset`` of ordered pairs, together with the order-
theoretic helpers the properization needs: minimal elements (``MinS``),
least elements (canonical classes) and Hasse-diagram reduction for
rendering.

All functions are pure: they take and return immutable values and never
mutate their arguments.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

T = TypeVar("T", bound=Hashable)

Pair = Tuple[T, T]
Relation = FrozenSet[Pair]

__all__ = [
    "successors_map",
    "predecessors_map",
    "reflexive_closure",
    "transitive_closure",
    "reflexive_transitive_closure",
    "closure_insert",
    "iter_bits",
    "closure_insert_bits",
    "closure_undo_bits",
    "is_reflexive",
    "is_transitive",
    "is_antisymmetric",
    "find_cycle",
    "is_partial_order",
    "minimal_elements",
    "maximal_elements",
    "least_element",
    "greatest_element",
    "down_set",
    "up_set",
    "covers",
    "topological_order",
    "restrict",
]


def successors_map(relation: AbstractSet[Pair]) -> Dict[T, Set[T]]:
    """Index a relation as ``{x: {y | (x, y) in relation}}``."""
    index: Dict[T, Set[T]] = {}
    for x, y in relation:
        index.setdefault(x, set()).add(y)
    return index


def predecessors_map(relation: AbstractSet[Pair]) -> Dict[T, Set[T]]:
    """Index a relation as ``{y: {x | (x, y) in relation}}``."""
    index: Dict[T, Set[T]] = {}
    for x, y in relation:
        index.setdefault(y, set()).add(x)
    return index


def reflexive_closure(
    relation: AbstractSet[Pair], universe: Iterable[T]
) -> Relation:
    """Add ``(x, x)`` for every ``x`` in *universe*."""
    closed = set(relation)
    closed.update((x, x) for x in universe)
    return frozenset(closed)


def transitive_closure(relation: AbstractSet[Pair]) -> Relation:
    """The least transitive relation containing *relation*.

    Implemented as a breadth-first reachability sweep from each source,
    which is ``O(V · E)`` — comfortably fast for schema-sized graphs and
    free of the cubic blow-up of Floyd-Warshall on sparse inputs.
    """
    succ = successors_map(relation)
    closed: Set[Pair] = set()
    for source in succ:
        frontier = list(succ[source])
        seen: Set[T] = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(succ.get(node, ()))
        closed.update((source, target) for target in seen)
    return frozenset(closed)


def reflexive_transitive_closure(
    relation: AbstractSet[Pair], universe: Iterable[T]
) -> Relation:
    """``relation* ∪ identity`` over *universe* — the paper's ``(S1 ∪ S2)*``."""
    return reflexive_closure(transitive_closure(relation), universe)


def closure_insert(
    succ: Dict[T, Set[T]],
    pred: Dict[T, Set[T]],
    sub: T,
    sup: T,
    undo: Optional[List[Pair]] = None,
) -> None:
    """Insert ``(sub, sup)`` into a reflexive-transitively-closed relation.

    The relation is held *mutably* as successor/predecessor maps in
    which every registered element maps to a set containing at least
    itself.  The closure is delta-updated: every predecessor of *sub*
    gains every successor of *sup* — ``O(|down(sub)| · |up(sup)|)`` for
    one edge instead of re-closing the whole relation.  This is the
    primitive under :class:`repro.perf.closure.ClosureBuilder` and the
    reason folding n schemas costs one closure, not n.

    When *undo* is given, every pair actually added is appended to it,
    so a caller composing several inserts can roll the maps back to
    their prior state by discarding exactly those pairs — rollback cost
    proportional to the work done, not the relation size.

    Raises :class:`ValueError` if the edge would create a non-trivial
    cycle (``sup`` already strictly reaches ``sub``); callers translate
    this into their domain error.
    """
    succ_sub = succ.setdefault(sub, {sub})
    pred.setdefault(sub, {sub})
    succ.setdefault(sup, {sup})
    pred.setdefault(sup, {sup})
    if sup in succ_sub:
        return
    if sub in succ[sup]:
        raise ValueError(f"inserting ({sub!r}, {sup!r}) creates a cycle")
    sups = succ[sup]
    for lower in tuple(pred[sub]):
        gained = sups - succ[lower]
        if not gained:
            continue
        succ[lower] |= gained
        for upper in gained:
            pred[upper].add(lower)
        if undo is not None:
            undo.extend((lower, upper) for upper in gained)


def iter_bits(mask: int) -> Iterator[int]:
    """The set bit positions of *mask*, ascending.

    The dense-id counterpart of iterating a set of classes: a bitset is
    one Python int, and ``mask & -mask`` isolates the lowest set bit in
    a single C-level operation.

    >>> list(iter_bits(0b101001))
    [0, 3, 5]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def closure_insert_bits(
    succ: List[int],
    pred: List[int],
    sub: int,
    sup: int,
    undo: Optional[List[Tuple[bool, int, int]]] = None,
) -> None:
    """Insert ``(sub, sup)`` into a closed relation held as bitmasks.

    The dense-id counterpart of :func:`closure_insert`: node *i*'s
    up-set is the int ``succ[i]`` (bit *j* set ⇔ ``i ==> j``) and its
    down-set is ``pred[i]``, both reflexive (own bit always set).  The
    delta is the same ``down(sub) × up(sup)`` rectangle, but each inner
    set union is one ``|`` on a Python int — the whole row is updated
    word-parallel instead of element-by-element, which is where the
    bitset engine's constant factor comes from.

    When *undo* is given, every mask actually changed is recorded as
    ``(is_succ, node, gained_bits)``; :func:`closure_undo_bits` replays
    the log to restore the prior state exactly (the gained bits were by
    construction absent before, so ``&= ~gained`` is a perfect inverse).

    Raises :class:`ValueError` if the edge would create a non-trivial
    cycle (``sup`` already strictly reaches ``sub``), leaving the masks
    untouched; callers translate this into their domain error.
    """
    if (succ[sub] >> sup) & 1:
        return
    if (succ[sup] >> sub) & 1:
        raise ValueError(f"inserting ({sub!r}, {sup!r}) creates a cycle")
    down = pred[sub]
    up = succ[sup]
    mask = down
    while mask:
        low = mask & -mask
        lower = low.bit_length() - 1
        mask ^= low
        gained = up & ~succ[lower]
        if gained:
            succ[lower] |= gained
            if undo is not None:
                undo.append((True, lower, gained))
    mask = up
    while mask:
        low = mask & -mask
        upper = low.bit_length() - 1
        mask ^= low
        gained = down & ~pred[upper]
        if gained:
            pred[upper] |= gained
            if undo is not None:
                undo.append((False, upper, gained))


def closure_undo_bits(
    succ: List[int],
    pred: List[int],
    undo: List[Tuple[bool, int, int]],
) -> None:
    """Roll back a sequence of :func:`closure_insert_bits` calls.

    Each record's gained bits were absent before its insert and no two
    records overlap on the same (side, node) bits, so clearing them in
    any order restores the exact prior masks — rollback cost is
    proportional to the work done, not the relation size.
    """
    for is_succ, node, gained in reversed(undo):
        if is_succ:
            succ[node] &= ~gained
        else:
            pred[node] &= ~gained


def is_reflexive(relation: AbstractSet[Pair], universe: Iterable[T]) -> bool:
    """Does *relation* contain ``(x, x)`` for every ``x`` in *universe*?"""
    pairs = set(relation)
    return all((x, x) in pairs for x in universe)


def is_transitive(relation: AbstractSet[Pair]) -> bool:
    """Does ``(x, y), (y, z) ∈ relation`` imply ``(x, z) ∈ relation``?"""
    pairs = set(relation)
    succ = successors_map(relation)
    for x, y in pairs:
        for z in succ.get(y, ()):
            if (x, z) not in pairs:
                return False
    return True


def is_antisymmetric(relation: AbstractSet[Pair]) -> bool:
    """Does ``(x, y), (y, x) ∈ relation`` imply ``x == y``?"""
    pairs = set(relation)
    return all(x == y or (y, x) not in pairs for x, y in pairs)


def find_cycle(relation: AbstractSet[Pair]) -> Optional[Tuple[T, ...]]:
    """Return a witness cycle ``(x0, x1, .., x0)`` of distinct edges, or None.

    Self-loops ``(x, x)`` are ignored: the specialization order is
    reflexive by definition, so only non-trivial cycles demonstrate a
    failure of antisymmetry.
    """
    succ = {
        x: sorted(
            (y for y in ys if y != x),
            key=repr,
        )
        for x, ys in successors_map(relation).items()
    }
    visiting: Set[T] = set()
    done: Set[T] = set()
    stack: List[T] = []

    def visit(node: T) -> Optional[Tuple[T, ...]]:
        visiting.add(node)
        stack.append(node)
        for nxt in succ.get(node, ()):
            if nxt in done:
                continue
            if nxt in visiting:
                start = stack.index(nxt)
                return tuple(stack[start:]) + (nxt,)
            found = visit(nxt)
            if found is not None:
                return found
        visiting.discard(node)
        done.add(node)
        stack.pop()
        return None

    for root in sorted(succ, key=repr):
        if root not in done:
            cycle = visit(root)
            if cycle is not None:
                return cycle
    return None


def is_partial_order(
    relation: AbstractSet[Pair], universe: Iterable[T]
) -> bool:
    """Is *relation* reflexive, transitive and antisymmetric over *universe*?"""
    universe = list(universe)
    return (
        is_reflexive(relation, universe)
        and is_transitive(relation)
        and is_antisymmetric(relation)
    )


def minimal_elements(
    subset: AbstractSet[T], order: AbstractSet[Pair]
) -> FrozenSet[T]:
    """The paper's ``MinS(X)``: elements of *subset* with no strict lower bound in it.

    ``MinS(X) = {p ∈ X | ∀q ∈ X . q ⇒ p implies q = p}`` (section 4.2).
    """
    pairs = set(order)
    return frozenset(
        p
        for p in subset
        if all(q == p or (q, p) not in pairs for q in subset)
    )


def maximal_elements(
    subset: AbstractSet[T], order: AbstractSet[Pair]
) -> FrozenSet[T]:
    """Dual of :func:`minimal_elements`."""
    pairs = set(order)
    return frozenset(
        p
        for p in subset
        if all(q == p or (p, q) not in pairs for q in subset)
    )


def least_element(
    subset: AbstractSet[T], order: AbstractSet[Pair]
) -> Optional[T]:
    """The unique element of *subset* below all others, or ``None``.

    Condition 1 of section 2 demands exactly this of every reach set
    ``R(p, a)``: a least target — the *canonical class* of the arrow.

    Runs in two linear passes: a tournament sweep (if a least element
    exists it wins every comparison it enters, so it ends up as the
    candidate) followed by a verification pass.
    """
    pairs = order if isinstance(order, (set, frozenset)) else set(order)
    candidate: Optional[T] = None
    for element in subset:
        if candidate is None or (element, candidate) in pairs:
            candidate = element
    if candidate is None:
        return None
    if all((candidate, q) in pairs or candidate == q for q in subset):
        return candidate
    return None


def greatest_element(
    subset: AbstractSet[T], order: AbstractSet[Pair]
) -> Optional[T]:
    """Dual of :func:`least_element`."""
    pairs = set(order)
    for p in subset:
        if all((q, p) in pairs or p == q for q in subset):
            return p
    return None


def down_set(element: T, order: AbstractSet[Pair]) -> FrozenSet[T]:
    """All ``q`` with ``q ⇒ element`` (including *element* if reflexive)."""
    return frozenset(x for x, y in order if y == element)


def up_set(element: T, order: AbstractSet[Pair]) -> FrozenSet[T]:
    """All ``q`` with ``element ⇒ q`` (including *element* if reflexive)."""
    return frozenset(y for x, y in order if x == element)


def covers(order: AbstractSet[Pair]) -> Relation:
    """The covering relation (Hasse diagram edges) of a partial order.

    ``(x, y)`` is a cover iff ``x ⇒ y``, ``x != y`` and no distinct ``z``
    has ``x ⇒ z ⇒ y``.  Renderers draw only these edges, exactly as the
    paper omits "double arrows implied by transitivity and reflexivity".
    """
    strict = {(x, y) for x, y in order if x != y}
    pairs = set(strict)
    kept = set()
    for x, y in strict:
        if not any((x, z) in pairs and (z, y) in pairs for z in {b for a, b in pairs if a == x}):
            kept.add((x, y))
    return frozenset(kept)


def topological_order(
    universe: Iterable[T], order: AbstractSet[Pair]
) -> List[T]:
    """A deterministic linearization of a partial order, smaller first.

    Elements with no strict predecessors come first; ties are broken by
    ``repr`` so the output is stable across runs.
    """
    nodes = sorted(set(universe), key=repr)
    strict_pred = predecessors_map({(x, y) for x, y in order if x != y})
    remaining = {n: {p for p in strict_pred.get(n, set()) if p in nodes} for n in nodes}
    result: List[T] = []
    ready = [n for n in nodes if not remaining[n]]
    placed: Set[T] = set()
    while ready:
        node = ready.pop(0)
        result.append(node)
        placed.add(node)
        newly_ready = []
        for other in nodes:
            if other in placed or other in ready or other in newly_ready:
                continue
            if remaining[other] <= placed:
                newly_ready.append(other)
        ready = sorted(ready + newly_ready, key=repr)
    if len(result) != len(nodes):
        leftovers = [n for n in nodes if n not in placed]
        raise ValueError(f"relation is cyclic; could not place {leftovers!r}")
    return result


def restrict(relation: AbstractSet[Pair], universe: AbstractSet[T]) -> Relation:
    """Keep only pairs whose endpoints both lie in *universe*."""
    return frozenset((x, y) for x, y in relation if x in universe and y in universe)
