"""Properization: turning a weak schema into a proper one (section 4.2).

The upper merge of two proper schemas is in general only *weak*: a class
may acquire ``a``-arrows to several incomparable targets (Figure 3's
``C`` inherits ``a``-arrows to both ``B1`` and ``B2``).  The paper
repairs this by introducing *implicit classes*, one for each set of
minimal classes jointly reachable along arrows:

.. code-block:: text

    I0   = { {p} | p ∈ C }
    In+1 = { R(X, a) | X ∈ In, a ∈ L }
    I∞   = ⋃ n≥1  In
    Imp  = { MinS(X) | X ∈ I∞, |MinS(X)| > 1 }

For each ``X ∈ Imp`` a fresh class ``X̄`` (here
:class:`~repro.core.names.ImplicitName`) is added below the members of
``X``, arrows are re-targeted at the new classes, and specialization
edges between implicit classes are filled in.  The result ``Ḡ`` is a
proper schema with ``G ⊑ Ḡ``, and — because implicit names record their
origin — repeating the construction across successive merges stays
associative (the Figure 4/5 example).

This module implements the construction exactly, plus the helpers the
rest of the library needs: detecting/stripping implicit classes and
computing ``Imp`` on its own (used by the growth benchmarks).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.names import ClassName, GenName, ImplicitName, Label
from repro.core.proper import check_proper
from repro.core.schema import Schema

__all__ = [
    "reachable_sets",
    "implicit_sets",
    "properize",
    "strip_implicits",
    "implicit_classes_of",
    "is_implicit",
]


def is_implicit(cls: ClassName) -> bool:
    """Is *cls* a class invented by (upper or lower) properization?"""
    return isinstance(cls, (ImplicitName, GenName))


def implicit_classes_of(schema: Schema) -> FrozenSet[ClassName]:
    """All invented classes currently present in *schema*."""
    return frozenset(c for c in schema.classes if is_implicit(c))


def strip_implicits(schema: Schema) -> Schema:
    """The restriction of *schema* to its user-supplied classes.

    The paper notes implicit classes "have no additional information
    associated with them"; stripping and re-deriving them is therefore
    lossless, a fact the property tests verify (properize ∘ strip ∘
    properize == properize on merge results).
    """
    return schema.restrict(schema.classes - implicit_classes_of(schema))


def reachable_sets(schema: Schema) -> Set[FrozenSet[ClassName]]:
    """The paper's ``I∞``: every ``R(X, a)`` reachable from a singleton.

    Computed as a worklist fixpoint.  Only non-empty reach sets are kept
    (empty sets have ``|MinS| = 0`` and can never contribute an implicit
    class, and dropping them keeps the fixpoint small).
    """
    seen: Set[FrozenSet[ClassName]] = set()
    frontier: List[FrozenSet[ClassName]] = [
        frozenset({p}) for p in schema.classes
    ]
    labels = schema.labels()
    while frontier:
        current = frontier.pop()
        for label in labels:
            reached = schema.reach_set(current, label)
            if reached and reached not in seen:
                seen.add(reached)
                frontier.append(reached)
    return seen


def implicit_sets(schema: Schema) -> Set[FrozenSet[ClassName]]:
    """The paper's ``Imp``: minimal-element sets of size > 1 in ``I∞``."""
    result: Set[FrozenSet[ClassName]] = set()
    for reached in reachable_sets(schema):
        minimal = schema.min_classes(reached)
        if len(minimal) > 1:
            result.add(minimal)
    return result


def properize(schema: Schema) -> Schema:
    """The paper's ``G ↦ Ḡ``: embed a weak schema into a proper one.

    Follows section 4.2 step by step:

    1. compute ``Imp`` (:func:`implicit_sets`);
    2. ``C̄ = C ∪ {X̄ | X ∈ Imp}``;
    3. ``Ē`` keeps every original arrow, points ``x --a--> X̄``
       whenever ``X ⊆ R(x, a)``, and gives each implicit class the
       arrows of its member set (``R̄(X̄, a) = R(X, a)``);
    4. ``S̄`` adds ``X̄ ==> Ȳ`` when every class of ``Y`` has a
       specialization in ``X``, ``X̄ ==> p`` when some member of ``X``
       specializes ``p``, and ``p ==> X̄`` when ``p`` specializes every
       member of ``X``.

    The result is a proper schema with ``schema ⊑ properize(schema)``;
    both facts are asserted here (cheaply — properness witnesses come
    for free) and re-checked at scale by the property tests.  A schema
    that is already proper and has no multi-minimal reach sets is
    returned unchanged (the construction is idempotent).
    """
    imp = implicit_sets(schema)
    if not imp:
        return check_proper(schema)

    name_of: Dict[FrozenSet[ClassName], ImplicitName] = {
        member_set: ImplicitName(member_set) for member_set in imp
    }
    # Deduplicate by name: flattening may identify member sets; keep the
    # minimal classes of their union as the single definition.
    members_of: Dict[ImplicitName, FrozenSet[ClassName]] = {}
    for member_set, label in name_of.items():
        if label in members_of:
            members_of[label] = schema.min_classes(
                members_of[label] | member_set
            )
        else:
            members_of[label] = member_set

    new_classes = set(schema.classes) | set(members_of)

    # --- arrows -------------------------------------------------------
    def reach_bar(node: ClassName, label: Label) -> FrozenSet[ClassName]:
        if isinstance(node, ImplicitName) and node in members_of:
            return schema.reach_set(members_of[node], label)
        return schema.reach(node, label)

    labels = schema.labels()
    new_arrows: Set[Tuple[ClassName, Label, ClassName]] = set()
    for node in new_classes:
        for label in labels:
            reached = reach_bar(node, label)
            if not reached:
                continue
            for target in reached:
                new_arrows.add((node, label, target))
            reached_size = len(reached)
            for imp_label, imp_members in members_of.items():
                if len(imp_members) <= reached_size and imp_members <= reached:
                    new_arrows.add((node, label, imp_label))

    # --- specializations ----------------------------------------------
    new_spec: Set[Tuple[ClassName, ClassName]] = set(schema.spec)
    spec_pairs = schema.spec
    for x_label, x_members in members_of.items():
        for y_label, y_members in members_of.items():
            if x_label != y_label and all(
                any((q, p) in spec_pairs for q in x_members) for p in y_members
            ):
                new_spec.add((x_label, y_label))
        for p in schema.classes:
            if any((q, p) in spec_pairs for q in x_members):
                new_spec.add((x_label, p))
            if all((p, q) in spec_pairs for q in x_members):
                new_spec.add((p, x_label))

    result = Schema.build(
        classes=new_classes, arrows=new_arrows, spec=new_spec
    )
    return check_proper(result)
