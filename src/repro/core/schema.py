"""Weak schemas — the central data structure of the reproduction.

Section 4.1 of the paper defines a *weak schema* over ``N, L`` as a
triple ``(C, E, S)`` where

* ``C ⊆ N`` is a finite set of classes,
* ``S`` is a partial order on ``C`` (reflexive, transitive,
  antisymmetric) — the *specialization* relation, written ``p ==> q``,
* ``E ⊆ C × L × C`` is the *arrow* relation, written ``p --a--> q``,
  satisfying the two closure conditions

  * **W1** if ``p ==> q`` and ``q --a--> r`` then ``p --a--> r``
    (arrows are inherited by specializations), and
  * **W2** if ``p --a--> s`` and ``s ==> r`` then ``p --a--> r``
    (arrows to a class also reach its generalizations).

:class:`Schema` represents exactly this, as an immutable, structurally
hashable value.  Its *constructor* validates that the given triple
already is a weak schema; the far more convenient classmethod
:meth:`Schema.build` accepts un-closed user input (strings for names,
missing reflexive edges, un-inherited arrows) and computes the closures,
which is how every example in the paper is written down.

Proper schemas (section 2) are weak schemas satisfying an extra
canonicality condition; see :mod:`repro.core.proper`.

>>> from repro.core.schema import Schema
>>> g = Schema.build(arrows=[("Employee", "salary", "Int")],
...                  spec=[("Manager", "Employee")])
>>> g.has_arrow("Manager", "salary", "Int")  # W1: arrows are inherited
True
>>> sorted(str(c) for c in g.specializations_of("Employee"))
['Employee', 'Manager']
>>> g == Schema.build(arrows=[("Employee", "salary", "Int"),
...                           ("Manager", "salary", "Int")],
...                   spec=[("Manager", "Employee")])  # same closure
True
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.perf.closure import DenseClosure

from repro.core import relations
from repro.core.names import (
    BaseName,
    ClassName,
    GenName,
    ImplicitName,
    Label,
    check_label,
    name,
    names,
    sort_key,
)
from repro.exceptions import (
    IncompatibleSchemasError,
    SchemaValidationError,
)
from repro.perf.interning import InternTable

__all__ = ["Arrow", "SpecEdge", "Schema"]


Arrow = Tuple[ClassName, Label, ClassName]
SpecEdge = Tuple[ClassName, ClassName]

NameLike = Union[ClassName, str]
ArrowLike = Tuple[NameLike, Label, NameLike]
SpecLike = Tuple[NameLike, NameLike]

# Hash-consing tables (see repro.perf).  Arrows entering through the
# public coercion path share one canonical tuple per (source, label,
# target), and every closed schema is interned on its component triple,
# so structurally equal schemas are usually pointer-equal and repeated
# constructions of the same value skip validation entirely.
_ARROW_INTERN = InternTable("schema.arrows", maxsize=1 << 17)
_SCHEMA_INTERN = InternTable("schema.schemas", maxsize=4096)

# Per-process identity tokens for memo keys (see _schema_token): a small
# int per Schema *instance*, monotonic in creation order.
_TOKEN_COUNTER = itertools.count()


def _schema_token(schema: "Schema") -> int:
    """A small per-process int identifying this Schema instance.

    Memo caches (``repro.core.ordering``, ``repro.core.lower``) key on
    tokens instead of the schemas themselves: hashing a token is one
    int hash rather than a (possibly large) frozenset-triple hash, and
    interning makes pointer identity the common case for equal schemas,
    so the token is an honest proxy.  Distinct-but-equal instances get
    distinct tokens — that only costs a duplicate cache line, never a
    wrong answer.

    The fallback path serves instances created through
    ``object.__new__`` without the slot populated (the
    :mod:`repro.perf.reference` oracle); tokens are assigned on first
    use, which is observationally pure on an immutable value.
    """
    try:
        return schema._token
    except AttributeError:
        token = next(_TOKEN_COUNTER)
        object.__setattr__(schema, "_token", token)
        return token


def _coerce_arrow(edge: ArrowLike) -> Arrow:
    try:
        source, label, target = edge
    except (TypeError, ValueError) as exc:
        raise SchemaValidationError(
            f"arrows must be (source, label, target) triples, got {edge!r}"
        ) from exc
    arrow = (name(source), check_label(label), name(target))
    cached = _ARROW_INTERN.get(arrow)
    if cached is not None:
        return cached
    return _ARROW_INTERN.put(arrow, arrow)


def _coerce_spec(edge: SpecLike) -> SpecEdge:
    try:
        sub, sup = edge
    except (TypeError, ValueError) as exc:
        raise SchemaValidationError(
            f"specializations must be (sub, super) pairs, got {edge!r}"
        ) from exc
    return (name(sub), name(sup))


def _closure_index(
    arrows: Iterable[Arrow],
    below: Mapping[ClassName, AbstractSet[ClassName]],
    above: Mapping[ClassName, AbstractSet[ClassName]],
) -> Dict[Tuple[ClassName, Label], FrozenSet[ClassName]]:
    """The W1/W2-closed reach index ``{(p, a): R(p, a)}`` of an arrow set.

    *below*/*above* map each class to its down-/up-set in an already
    reflexive, transitive specialization (a class absent from a map is
    treated as related only to itself).

    The naive closure enumerates ``below(source) × above(target)`` per
    input arrow, re-adding the same closed arrow once per derivation —
    ~4.2M ``set.add`` calls for an output of 19k arrows on the 200-schema
    benchmark.  This version deduplicates first (group raw arrows by
    ``(source, label)``, expand targets upward once) and then pushes each
    group down the specialization with bulk ``set.update``, so the work
    is proportional to the number of *distinct* (class, label) rows, not
    the number of derivations.
    """
    expanded: Dict[Tuple[ClassName, Label], set] = {}
    for source, label, target in arrows:
        bucket = expanded.get((source, label))
        if bucket is None:
            bucket = expanded[(source, label)] = set()
        sups = above.get(target)
        if sups:
            bucket.update(sups)
        else:
            bucket.add(target)
    out: Dict[Tuple[ClassName, Label], set] = {}
    for (source, label), targets in expanded.items():
        for sub in below.get(source) or (source,):
            existing = out.get((sub, label))
            if existing is None:
                out[(sub, label)] = set(targets)
            else:
                existing.update(targets)
    return {key: frozenset(targets) for key, targets in out.items()}


def _index_arrows(
    index: Dict[Tuple[ClassName, Label], FrozenSet[ClassName]],
) -> FrozenSet[Arrow]:
    """Flatten a reach index back into the closed arrow relation."""
    return frozenset(
        (source, label, target)
        for (source, label), targets in index.items()
        for target in targets
    )


def _arrow_closure(
    arrows: AbstractSet[Arrow], spec: AbstractSet[SpecEdge]
) -> FrozenSet[Arrow]:
    """Close an arrow set under W1 and W2 given a transitive, reflexive spec.

    With ``S`` already reflexive and transitive a single pass suffices:
    every arrow ``q --a--> s`` induces ``p --a--> r`` for all ``p ==> q``
    and ``s ==> r``.
    """
    return _index_arrows(
        _closure_index(
            arrows,
            relations.predecessors_map(spec),
            relations.successors_map(spec),
        )
    )


class Schema:
    """An immutable weak schema ``(C, E, S)``.

    Use :meth:`Schema.build` to construct one from raw, un-closed data;
    the plain constructor insists the input is already a valid weak
    schema and raises :class:`~repro.exceptions.SchemaValidationError`
    otherwise.

    Equality and hashing are structural, so two independently built
    schemas with the same classes, arrows and specializations compare
    equal — which is what lets the test suite assert "our merge equals
    the paper's figure" directly.
    """

    __slots__ = (
        "_classes",
        "_arrows",
        "_spec",
        "_hash",
        "_reach_cache",
        "_dense",
        "_strict_cache",
        "_token",
    )

    def __new__(
        cls,
        classes: AbstractSet[ClassName],
        arrows: AbstractSet[Arrow],
        spec: AbstractSet[SpecEdge],
    ):
        classes = frozenset(classes)
        arrows = frozenset(arrows)
        spec = frozenset(spec)
        key = (classes, arrows, spec)
        if cls is Schema:
            cached = _SCHEMA_INTERN.get(key)
            if cached is not None:
                # An equal schema was already validated; components equal
                # to a valid weak schema's are themselves valid.
                return cached
        cls._validate(classes, arrows, spec)
        self = object.__new__(cls)
        object.__setattr__(self, "_classes", classes)
        object.__setattr__(self, "_arrows", arrows)
        object.__setattr__(self, "_spec", spec)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_reach_cache", None)
        object.__setattr__(self, "_dense", None)
        object.__setattr__(self, "_token", next(_TOKEN_COUNTER))
        if cls is Schema:
            _SCHEMA_INTERN.put(key, self)
        return self

    def __init__(
        self,
        classes: AbstractSet[ClassName],
        arrows: AbstractSet[Arrow],
        spec: AbstractSet[SpecEdge],
    ):
        # Construction (validation, interning) happens in __new__ so the
        # intern table can return the canonical instance.
        pass

    @classmethod
    def _from_closed(
        cls,
        classes: FrozenSet[ClassName],
        arrows: Optional[FrozenSet[Arrow]],
        spec: Optional[FrozenSet[SpecEdge]],
        reach_index: Optional[
            Dict[Tuple[ClassName, Label], FrozenSet[ClassName]]
        ] = None,
        dense: Optional["DenseClosure"] = None,
    ) -> "Schema":
        """Internal: wrap components already known to be valid.

        Used by :meth:`build` and the incremental update paths (which
        have just computed the closures themselves) to avoid re-deriving
        them during validation — the dominant cost on large merges.
        Library-internal only; every public path still validates.

        *reach_index*, when supplied, pre-populates the reach cache with
        the index the closure computation produced as a by-product.

        *arrows* may be ``None`` when *reach_index* or *dense* is given:
        the flat arrow relation is then materialized lazily, on first
        access to :attr:`arrows` (or to the structural hash).  The dense
        closure engine goes one step further and passes *dense* (a
        ``repro.perf.closure.DenseClosure``) with ``spec=None``: the
        specialization closure and the whole name-level reach index are
        decoded lazily too, so ``join_all`` hands back a view over
        id-space bitmasks without walking a single target set — the
        zero-copy handoff.  Semantics are unchanged: the dense rows
        *are* the closed relations, just in id space.  Lazy schemas
        intern on keys embedding the grouped rows (for dense schemas,
        the id table plus both mask tables, which determine every
        component) — key spaces disjoint from the eager
        ``(classes, arrows, spec)`` key (tuple arities and element
        shapes differ) except at the empty schema, where all denote the
        same value.
        """
        if arrows is None:
            if dense is not None:
                key: Tuple[object, ...] = (
                    classes,
                    dense.names,
                    dense.succ,
                    frozenset(dense.reach.items()),
                )
            else:
                assert reach_index is not None and spec is not None
                key = (
                    classes,
                    spec,
                    frozenset(reach_index.items()),
                )
            hash_value: Optional[int] = None
        else:
            key = (classes, arrows, spec)
            hash_value = hash(key)
        if cls is Schema:
            # Same guard as __new__: subclasses must not receive (or
            # leak) base-class instances through the intern table.
            cached = _SCHEMA_INTERN.get(key)
            if cached is not None:
                if reach_index is not None and cached._reach_cache is None:
                    object.__setattr__(cached, "_reach_cache", reach_index)
                return cached
        instance = object.__new__(cls)
        object.__setattr__(instance, "_classes", classes)
        object.__setattr__(instance, "_arrows", arrows)
        object.__setattr__(instance, "_spec", spec)
        object.__setattr__(instance, "_hash", hash_value)
        object.__setattr__(instance, "_reach_cache", reach_index)
        object.__setattr__(instance, "_dense", dense)
        object.__setattr__(instance, "_token", next(_TOKEN_COUNTER))
        if cls is Schema:
            _SCHEMA_INTERN.put(key, instance)
        return instance

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _validate(
        classes: FrozenSet[ClassName],
        arrows: FrozenSet[Arrow],
        spec: FrozenSet[SpecEdge],
    ) -> None:
        for cls in classes:
            if not isinstance(cls, (BaseName, ImplicitName, GenName)):
                raise SchemaValidationError(f"not a class name: {cls!r}")
        for source, label, target in arrows:
            check_label(label)
            if source not in classes or target not in classes:
                raise SchemaValidationError(
                    f"arrow {source} --{label}--> {target} mentions a class "
                    "outside C"
                )
        for sub, sup in spec:
            if sub not in classes or sup not in classes:
                raise SchemaValidationError(
                    f"specialization {sub} ==> {sup} mentions a class outside C"
                )
        if not relations.is_reflexive(spec, classes):
            raise SchemaValidationError(
                "specialization relation is not reflexive over C"
            )
        if not relations.is_transitive(spec):
            raise SchemaValidationError(
                "specialization relation is not transitive"
            )
        if not relations.is_antisymmetric(spec):
            cycle = relations.find_cycle(spec) or ()
            raise SchemaValidationError(
                "specialization relation is not antisymmetric; cycle: "
                + " ==> ".join(str(c) for c in cycle)
            )
        # W1 and W2 in one check: arrows must already be their own closure.
        closure = _arrow_closure(arrows, spec)
        if closure != arrows:
            missing = closure - arrows
            sample = sorted(missing, key=lambda e: (sort_key(e[0]), e[1]))[:3]
            pretty = ", ".join(f"{s} --{a}--> {t}" for s, a, t in sample)
            raise SchemaValidationError(
                f"arrow relation is not W1/W2-closed; missing e.g. {pretty}"
            )

    @classmethod
    def build(
        cls,
        classes: Iterable[NameLike] = (),
        arrows: Iterable[ArrowLike] = (),
        spec: Iterable[SpecLike] = (),
    ) -> "Schema":
        """Build a weak schema from raw data, computing all closures.

        * strings are accepted wherever class names are expected;
        * classes mentioned only in edges are added to ``C``;
        * the specialization relation is closed reflexively and
          transitively (raising
          :class:`~repro.exceptions.IncompatibleSchemasError` if that
          closure has a non-trivial cycle);
        * the arrow relation is closed under W1/W2.

        This mirrors how the paper draws schemas: "edges in E implied by
        constraint 2 will be omitted" — the reader (here: the builder)
        restores them.
        """
        class_set = set(names(classes))
        arrow_set = {_coerce_arrow(edge) for edge in arrows}
        spec_set = {_coerce_spec(edge) for edge in spec}
        for source, _label, target in arrow_set:
            class_set.add(source)
            class_set.add(target)
        for sub, sup in spec_set:
            class_set.add(sub)
            class_set.add(sup)
        closed_spec = relations.reflexive_transitive_closure(spec_set, class_set)
        if not relations.is_antisymmetric(closed_spec):
            cycle = relations.find_cycle(closed_spec) or ()
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in cycle),
                cycle=cycle,
            )
        index = _closure_index(
            arrow_set,
            relations.predecessors_map(closed_spec),
            relations.successors_map(closed_spec),
        )
        closed_arrows = _index_arrows(index)
        return cls._from_closed(
            frozenset(class_set), closed_arrows, closed_spec, reach_index=index
        )

    @classmethod
    def empty(cls) -> "Schema":
        """The schema with no classes — the bottom of the information order."""
        return cls(frozenset(), frozenset(), frozenset())

    # ------------------------------------------------------------------
    # Primitive accessors
    # ------------------------------------------------------------------

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """The class set ``C``."""
        return self._classes

    @property
    def arrows(self) -> FrozenSet[Arrow]:
        """The full (W1/W2-closed) arrow relation ``E``.

        Schemas produced by the dense closure engine carry the relation
        as a reach index (or as id-space bitmask rows) and flatten it
        here, once, on first access — derived data over an immutable
        value, so the backfill is observationally pure.
        """
        cached = self._arrows
        if cached is None:
            cached = _index_arrows(self._reach_index())
            object.__setattr__(self, "_arrows", cached)
        return cached

    def _arrow_count(self) -> int:
        """``|E|`` without forcing lazy materialization."""
        if self._arrows is not None:
            return len(self._arrows)
        if self._reach_cache is not None:
            return sum(len(targets) for targets in self._reach_cache.values())
        return sum(mask.bit_count() for mask in self._dense.reach.values())

    def _spec_count(self) -> int:
        """``|S|`` without forcing lazy materialization."""
        if self._spec is not None:
            return len(self._spec)
        return sum(mask.bit_count() for mask in self._dense.succ)

    @property
    def spec(self) -> FrozenSet[SpecEdge]:
        """The specialization partial order ``S`` (reflexive & transitive).

        Dense-engine schemas carry ``S`` as id-space ``succ`` masks and
        decode it here, once, on first access.
        """
        cached = self._spec
        if cached is None:
            cached = self._dense.decode_spec()
            object.__setattr__(self, "_spec", cached)
        return cached

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("Schema is immutable")

    def __eq__(self, other) -> bool:
        if self is other:
            # Interning makes this the common case for equal schemas.
            return True
        if not isinstance(other, Schema):
            return NotImplemented
        if (
            self._hash is not None
            and other._hash is not None
            and self._hash != other._hash
        ):
            return False
        if self._classes != other._classes:
            return False
        mine = getattr(self, "_dense", None)
        theirs = getattr(other, "_dense", None)
        if mine is not None and theirs is not None and mine.names == theirs.names:
            # Both dense over the same id table: compare the bitmask
            # tables directly — no decoding at all.
            return mine.succ == theirs.succ and mine.reach == theirs.reach
        if self.spec != other.spec:
            return False
        if self._arrows is not None and other._arrows is not None:
            return self._arrows == other._arrows
        # The grouped indexes determine the flat relation (rows are
        # never empty), so comparing them avoids flattening.
        return self._reach_index() == other._reach_index()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            # Lazy schemas hash exactly like eager ones — on the
            # component triple — so mixed eager/lazy equality keeps the
            # hash contract.  Computed once, cached.
            h = hash((self._classes, self.arrows, self.spec))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return (
            f"Schema(|C|={len(self._classes)}, |E|={self._arrow_count()}, "
            f"|S|={self._spec_count()})"
        )

    def __contains__(self, cls: NameLike) -> bool:
        return name(cls) in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[ClassName]:
        return iter(sorted(self._classes, key=sort_key))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def has_class(self, cls: NameLike) -> bool:
        """Is *cls* a class of this schema?"""
        return name(cls) in self._classes

    def has_arrow(self, source: NameLike, label: Label, target: NameLike) -> bool:
        """Does ``source --label--> target`` hold (in the closed relation)?"""
        targets = self._reach_index().get((name(source), label))
        return targets is not None and name(target) in targets

    def is_spec(self, sub: NameLike, sup: NameLike) -> bool:
        """Does ``sub ==> sup`` hold?"""
        return (name(sub), name(sup)) in self.spec

    def strict_spec(self) -> FrozenSet[SpecEdge]:
        """The specialization pairs with distinct endpoints."""
        return frozenset((p, q) for p, q in self.spec if p != q)

    def _fold_layout(
        self,
    ) -> Tuple[
        Tuple[ClassName, ...],
        Tuple[Tuple[int, int, Optional[Tuple[int, ...]]], ...],
        Tuple[Tuple[int, Label, int, Optional[Tuple[int, ...]]], ...],
    ]:
        """A *generating* view of the schema as positions into its classes.

        ``ClosureBuilder`` folds schemas repeatedly; resolving each
        class name to a builder id once per schema (via the *order*
        tuple) and then walking spec edges and reach rows as plain
        index tuples keeps name hashing out of the per-element hot
        loops entirely.  Because a schema's own ``S`` and reach index
        are already W1/W2-closed, the fold does not need all of them:
        any generating subset yields the identical union closure
        (closing is monotone and idempotent, so
        ``close(∪ Eᵢ) = close(∪ Gᵢ)`` whenever ``close(Gᵢ) = Eᵢ``).
        Three parts: *order* (the classes), the spec *covers* grouped
        per subclass as ``(sub_pos, first_sup_pos, rest)`` (transitive
        and reflexive pairs are regenerated by the builder's rectangle
        updates), and the reach *generator* rows as flat
        ``(source_pos, label, first_target_pos, rest)`` quads — for
        each ``(source, label)`` only the minimal targets not already
        inherited from a strict superclass's row, since W2 restores
        the upward target closure and W1 the downward source copies.
        Cover groups and generator rows are overwhelmingly singular,
        so the first position rides unwrapped and *rest* is ``None``
        unless the entry genuinely holds more.
        Populated on first use — derived data over an immutable value.
        """
        try:
            return self._strict_cache
        except AttributeError:
            order = tuple(self._classes)
            pos = {cls: k for k, cls in enumerate(order)}
            strict = {(p, q) for p, q in self.spec if p != q}
            depth: Dict[ClassName, int] = {}
            for p, _q in strict:
                depth[p] = depth.get(p, 0) + 1
            ups: Dict[int, List[int]] = {}
            for p, q in relations.covers(self.spec):
                ups.setdefault(pos[p], []).append(pos[q])
            # Superclasses first (ascending strict up-set size): each
            # class's rectangle then propagates its fully-updated
            # ancestor set in one shot instead of re-pushing later.
            groups = tuple(
                (i, sups[0], tuple(sups[1:]) if len(sups) > 1 else None)
                for i, sups in sorted(
                    ups.items(), key=lambda g: depth[order[g[0]]]
                )
            )
            sup_names: Dict[ClassName, List[ClassName]] = {}
            for p, q in strict:
                sup_names.setdefault(p, []).append(q)
            index = self._reach_index()
            index_get = index.get
            row_list: List[
                Tuple[int, Label, int, Optional[Tuple[int, ...]]]
            ] = []
            for (source, label), targets in index.items():
                extra = set(targets)
                for q in sup_names.get(source, ()):
                    inherited = index_get((q, label))
                    if inherited:
                        extra -= inherited
                if not extra:
                    continue
                gen = tuple(
                    pos[t]
                    for t in extra
                    if not any(e is not t and (e, t) in strict for e in extra)
                )
                row_list.append(
                    (
                        pos[source],
                        label,
                        gen[0],
                        gen[1:] if len(gen) > 1 else None,
                    )
                )
            rows = tuple(row_list)
            layout = (order, groups, rows)
            object.__setattr__(self, "_strict_cache", layout)
            return layout

    def spec_covers(self) -> FrozenSet[SpecEdge]:
        """The Hasse edges of ``S`` — what the paper's figures draw."""
        return relations.covers(self.spec)

    def labels(self) -> FrozenSet[Label]:
        """Every arrow label used in the schema."""
        return frozenset(label for _s, label in self._reach_index())

    def _reach_index(self) -> Dict[Tuple[ClassName, Label], FrozenSet[ClassName]]:
        """``R(p, a)`` for every populated pair, built once per schema.

        The index is derived data over an immutable value, so caching
        it is observationally pure; it turns the hot ``reach`` queries
        of properization and satisfaction checking from O(|E|) scans
        into dictionary lookups.
        """
        cached = self._reach_cache
        if cached is None:
            dense = getattr(self, "_dense", None)
            if dense is not None:
                cached = dense.decode_index()
            else:
                collected: Dict[Tuple[ClassName, Label], set] = {}
                for source, label, target in self._arrows:
                    collected.setdefault((source, label), set()).add(target)
                cached = {
                    key: frozenset(targets)
                    for key, targets in collected.items()
                }
            object.__setattr__(self, "_reach_cache", cached)
        return cached

    def out_labels(self, cls: NameLike) -> FrozenSet[Label]:
        """Labels of arrows leaving *cls* — the candidate key components of §5."""
        p = name(cls)
        return frozenset(
            label for (source, label) in self._reach_index() if source == p
        )

    def arrows_from(self, cls: NameLike) -> FrozenSet[Arrow]:
        """All arrows whose source is *cls*."""
        p = name(cls)
        return frozenset(
            (p, label, target)
            for (source, label), targets in self._reach_index().items()
            if source == p
            for target in targets
        )

    def arrows_into(self, cls: NameLike) -> FrozenSet[Arrow]:
        """All arrows whose target is *cls*."""
        q = name(cls)
        return frozenset(
            (source, label, q)
            for (source, label), targets in self._reach_index().items()
            if q in targets
        )

    def reach(self, cls: NameLike, label: Label) -> FrozenSet[ClassName]:
        """The paper's ``R(p, a)``: all classes reachable from *cls* by *label*."""
        return self._reach_index().get((name(cls), label), frozenset())

    def reach_set(
        self, subset: Iterable[NameLike], label: Label
    ) -> FrozenSet[ClassName]:
        """The paper's ``R(X, a)``: union of ``R(p, a)`` over ``p ∈ X``."""
        index = self._reach_index()
        combined: set = set()
        for member in names(subset):
            combined |= index.get((member, label), frozenset())
        return frozenset(combined)

    def min_classes(self, subset: Iterable[NameLike]) -> FrozenSet[ClassName]:
        """The paper's ``MinS(X)`` relative to this schema's order."""
        return relations.minimal_elements(names(subset), self.spec)

    def specializations_of(self, cls: NameLike) -> FrozenSet[ClassName]:
        """All ``p`` with ``p ==> cls`` (the down-set; includes *cls*)."""
        return relations.down_set(name(cls), self.spec)

    def generalizations_of(self, cls: NameLike) -> FrozenSet[ClassName]:
        """All ``q`` with ``cls ==> q`` (the up-set; includes *cls*)."""
        return relations.up_set(name(cls), self.spec)

    def root_classes(self) -> FrozenSet[ClassName]:
        """Classes with no strict generalization."""
        return relations.maximal_elements(self._classes, self.spec)

    def leaf_classes(self) -> FrozenSet[ClassName]:
        """Classes with no strict specialization."""
        return relations.minimal_elements(self._classes, self.spec)

    def is_empty(self) -> bool:
        """Is this the empty schema?"""
        return not self._classes

    # ------------------------------------------------------------------
    # Derived schemas
    # ------------------------------------------------------------------

    def restrict(self, keep: Iterable[NameLike]) -> "Schema":
        """The induced sub-schema on ``C ∩ keep``.

        Restriction preserves weak-schema-hood: W1/W2 are universally
        quantified implications over present edges, and restricting a
        partial order keeps it one.
        """
        kept = names(keep) & self._classes
        return Schema(
            kept,
            frozenset(
                (s, a, t) for s, a, t in self.arrows if s in kept and t in kept
            ),
            relations.restrict(self.spec, kept),
        )

    def without_classes(self, drop: Iterable[NameLike]) -> "Schema":
        """The induced sub-schema with *drop* removed."""
        return self.restrict(self._classes - names(drop))

    def rename(self, mapping: Mapping[NameLike, NameLike]) -> "Schema":
        """Apply a class-renaming map (the manual prep step of section 3).

        The map may be partial; unmentioned classes keep their names.
        Raises :class:`~repro.exceptions.SchemaValidationError` if the
        renaming collapses two distinct classes onto one name, since
        identification of classes must go through the merge (where it is
        an explicit, order-independent assertion), not through renaming.
        """
        table: Dict[ClassName, ClassName] = {
            name(old): name(new) for old, new in mapping.items()
        }

        def sub(cls: ClassName) -> ClassName:
            return table.get(cls, cls)

        new_classes = {sub(c) for c in self._classes}
        if len(new_classes) != len(self._classes):
            raise SchemaValidationError(
                "renaming collapses distinct classes; merge them via "
                "assertions instead"
            )
        return Schema(
            frozenset(new_classes),
            frozenset((sub(s), a, sub(t)) for s, a, t in self.arrows),
            frozenset((sub(p), sub(q)) for p, q in self.spec),
        )

    def rename_labels(self, mapping: Mapping[Label, Label]) -> "Schema":
        """Apply an arrow-label renaming map (synonym resolution, section 3)."""
        for old, new in mapping.items():
            check_label(old)
            check_label(new)
        return Schema(
            self._classes,
            frozenset(
                (s, mapping.get(a, a), t) for s, a, t in self.arrows
            ),
            self.spec,
        )

    def with_arrow(
        self, source: NameLike, label: Label, target: NameLike
    ) -> "Schema":
        """A new schema with one more arrow (closure delta-updated)."""
        return self.with_arrows([(source, label, target)])

    def with_arrows(self, edges: Iterable[ArrowLike]) -> "Schema":
        """A new schema with extra arrows, closed by *delta update*.

        Because ``S`` is unchanged and ``E`` is already W1/W2-closed,
        the closure of the extended arrow set is ``E`` plus the one-pass
        closure of just the additions — ``below(source) × above(target)``
        per new arrow — so cost scales with the delta, not the schema.
        Endpoints not yet in ``C`` are added (with their reflexive
        specialization), mirroring :meth:`build`.
        """
        additions = {_coerce_arrow(edge) for edge in edges} - self.arrows
        if not additions:
            return self
        classes = self._classes
        spec = self.spec
        new_classes = frozenset(
            endpoint
            for source, _label, target in additions
            for endpoint in (source, target)
            if endpoint not in classes
        )
        if new_classes:
            classes = classes | new_classes
            spec = spec | frozenset((c, c) for c in new_classes)
        delta = _index_arrows(
            _closure_index(
                additions,
                relations.predecessors_map(spec),
                relations.successors_map(spec),
            )
        )
        return Schema._from_closed(classes, self.arrows | delta, spec)

    def with_spec(self, sub: NameLike, sup: NameLike) -> "Schema":
        """A new schema with one more specialization edge (delta-closed).

        The transitive closure gains exactly ``down(sub) × up(sup)``;
        antisymmetry breaks iff ``sup ==> sub`` already held (the
        witness cycle is then ``sub ==> sup ==> sub``).  Arrows are
        re-derived only for the classes whose down-/up-sets changed —
        every other arrow's W1/W2 consequences are already present.
        """
        p, q = name(sub), name(sup)
        classes = self._classes
        spec = self.spec
        added = frozenset(c for c in (p, q) if c not in classes)
        if added:
            classes = classes | added
            spec = spec | frozenset((c, c) for c in added)
        if (p, q) in spec:
            if not added:
                return self
            return Schema._from_closed(classes, self.arrows, spec)
        if (q, p) in spec:
            raise IncompatibleSchemasError(
                "specialization edges form a cycle: "
                + " ==> ".join(str(c) for c in (p, q, p)),
                cycle=(p, q, p),
            )
        down = frozenset(x for x, y in spec if y == p) | {p}
        up = frozenset(y for x, y in spec if x == q) | {q}
        new_spec = spec | frozenset((x, y) for x in down for y in up)
        # Down-sets grew for classes above sup; up-sets for those below
        # sub.  Only arrows touching those classes can close further.
        affected = [
            arrow
            for arrow in self.arrows
            if arrow[0] in up or arrow[2] in down
        ]
        delta = _index_arrows(
            _closure_index(
                affected,
                relations.predecessors_map(new_spec),
                relations.successors_map(new_spec),
            )
        )
        return Schema._from_closed(classes, self.arrows | delta, new_spec)

    def with_class(self, cls: NameLike) -> "Schema":
        """A new schema with one more (isolated) class."""
        extra = name(cls)
        if extra in self._classes:
            return self
        return Schema(
            self._classes | {extra},
            self.arrows,
            self.spec | {(extra, extra)},
        )

    # ------------------------------------------------------------------
    # Introspection niceties
    # ------------------------------------------------------------------

    def sorted_classes(self) -> Tuple[ClassName, ...]:
        """Classes in the library's canonical (deterministic) order."""
        return tuple(sorted(self._classes, key=sort_key))

    def sorted_arrows(self) -> Tuple[Arrow, ...]:
        """Arrows in a deterministic order."""
        return tuple(
            sorted(
                self.arrows,
                key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2])),
            )
        )

    def stats(self) -> Dict[str, int]:
        """Size statistics used by the analysis and benchmark layers."""
        implicit = sum(1 for c in self._classes if isinstance(c, ImplicitName))
        general = sum(1 for c in self._classes if isinstance(c, GenName))
        return {
            "classes": len(self._classes),
            "base_classes": len(self._classes) - implicit - general,
            "implicit_classes": implicit,
            "generalization_classes": general,
            "arrows": self._arrow_count(),
            "spec_edges": len(self.strict_spec()),
            "labels": len(self.labels()),
        }
