"""Information orderings as first-class objects — the §6 merge criterion.

The paper closes section 6 with a methodological claim:

    "in order for a concept of a merge to be valid and well defined, it
    should have a definition in terms of an information ordering similar
    to the ones given here."

This module makes that criterion *executable*.  An
:class:`InformationOrdering` packages a carrier of schema-like values
with its order and (partial) lattice operations; the generic law
checkers (:func:`ordering_violations`, :func:`merge_law_violations`)
verify, over concrete samples, exactly the properties the paper uses to
justify its merges: the order is a partial order, the merge is its
least upper (or greatest lower) bound, and the induced binary operation
is associative, commutative and idempotent.

Three orderings are provided:

* :data:`WEAK_ORDERING` — section 4.1's component-wise order on weak
  schemas.  Joins are the weak upper merge, meets the plain
  intersection.
* :data:`ANNOTATED_ORDERING` — section 6's refined order on
  participation-annotated schemas, under which an absent arrow is
  information (constraint ``0``).  Meets are the (un-completed) lower
  bound; the n-ary :func:`annotated_join_all` is the **in-between
  merge** the paper anticipates ("there may well be valid and useful
  concepts of merges lying inbetween the two"): like the upper merge it
  unions classes and specializations, but it treats participation
  conflicts (one schema *forbids* an arrow that another *requires*) as
  a failure instead of silently unioning, because ``0`` and ``1`` have
  no common upper bound in the Figure 11 semilattice.  The operation is
  n-ary by necessity — folding binary joins re-creates the section 3
  order-dependence; see :func:`annotated_join_all`.
* :data:`KEYED_ORDERING` — section 5's order on keyed schemas: the
  schema order together with pointwise superkey-family containment.
  Joins compute the unique minimal satisfactory key assignment.

Because each merge here is a LUB/GLB *in an ordering*, the §4 laws hold
by construction; the property-test suite still machine-checks them via
the generic checkers, as the paper's philosophy demands.
"""

from __future__ import annotations

import abc
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.core import relations
from repro.core.keys import (
    KeyFamily,
    KeyedSchema,
    minimal_satisfactory_assignment,
)
from repro.core.lower import AnnotatedSchema, annotated_leq
from repro.core.names import ClassName, sort_key
from repro.core.ordering import is_sub, join as weak_join, meet as weak_meet
from repro.core.participation import Participation, glb_all, lub
from repro.core.schema import Arrow, Schema
from repro.exceptions import IncompatibleSchemasError

__all__ = [
    "InformationOrdering",
    "WeakSchemaOrdering",
    "AnnotatedSchemaOrdering",
    "KeyedSchemaOrdering",
    "WEAK_ORDERING",
    "ANNOTATED_ORDERING",
    "KEYED_ORDERING",
    "annotated_join",
    "annotated_join_all",
    "annotated_meet",
    "keyed_leq",
    "keyed_join",
    "keyed_meet",
    "ordering_violations",
    "merge_law_violations",
    "validate_merge_concept",
]

T = TypeVar("T")


class InformationOrdering(abc.ABC, Generic[T]):
    """A carrier of schema-like values with an information order.

    Subclasses supply :meth:`leq` and :meth:`join`; :meth:`meet` is
    optional (raise :class:`NotImplementedError` when the carrier has no
    greatest lower bounds).  ``join`` may be partial — it raises
    :class:`~repro.exceptions.IncompatibleSchemasError` when the two
    values have no common upper bound, mirroring Proposition 4.1's
    *bounded* completeness.
    """

    #: Human-readable name, used in law-violation messages.
    name: str = "ordering"

    @abc.abstractmethod
    def leq(self, left: T, right: T) -> bool:
        """Does ``left ⊑ right`` hold?"""

    @abc.abstractmethod
    def join(self, left: T, right: T) -> T:
        """The least upper bound, when one exists."""

    def meet(self, left: T, right: T) -> T:
        """The greatest lower bound, when the carrier supports meets."""
        raise NotImplementedError(f"{self.name} has no meet operation")

    def bottom(self) -> Optional[T]:
        """The least element, or ``None`` when the carrier has none."""
        return None

    def equal(self, left: T, right: T) -> bool:
        """Carrier equality (structural by default)."""
        return left == right

    def join_all(self, items: Iterable[T]) -> T:
        """Fold :meth:`join` over *items* (the n-ary merge).

        An empty collection yields :meth:`bottom`; if the carrier has no
        bottom an empty fold raises :class:`ValueError`.
        """
        result: Optional[T] = None
        for item in items:
            result = item if result is None else self.join(result, item)
        if result is None:
            result = self.bottom()
            if result is None:
                raise ValueError(
                    f"{self.name}: empty join with no bottom element"
                )
        return result

    def comparable(self, left: T, right: T) -> bool:
        """Are the two values related (either way)?"""
        return self.leq(left, right) or self.leq(right, left)

    def is_upper_bound(self, candidate: T, items: Iterable[T]) -> bool:
        """Is *candidate* above every element of *items*?"""
        return all(self.leq(item, candidate) for item in items)

    def is_lower_bound(self, candidate: T, items: Iterable[T]) -> bool:
        """Is *candidate* below every element of *items*?"""
        return all(self.leq(candidate, item) for item in items)


# ----------------------------------------------------------------------
# The weak-schema ordering (section 4.1)
# ----------------------------------------------------------------------


class WeakSchemaOrdering(InformationOrdering[Schema]):
    """Section 4.1's ordering: component-wise inclusion on ``(C, E, S)``."""

    name = "weak-schema ordering"

    def leq(self, left: Schema, right: Schema) -> bool:
        return is_sub(left, right)

    def join(self, left: Schema, right: Schema) -> Schema:
        return weak_join(left, right)

    def meet(self, left: Schema, right: Schema) -> Schema:
        return weak_meet(left, right)

    def bottom(self) -> Schema:
        return Schema.empty()


# ----------------------------------------------------------------------
# The annotated ordering (section 6) and its join — the in-between merge
# ----------------------------------------------------------------------


def _participation_opinions(
    schemas: Sequence[AnnotatedSchema], arrow: Arrow
) -> List[Participation]:
    """Each input's constraint on *arrow* — ABSENT counts only when the
    input knows both endpoints (section 6's convention that a missing
    arrow over known classes is constraint 0, while an unknown class is
    simply no opinion)."""
    source, label, target = arrow
    opinions: List[Participation] = []
    for schema in schemas:
        if source in schema.classes and target in schema.classes:
            opinions.append(schema.participation_of(source, label, target))
    return opinions


def annotated_join_all(
    schemas: Sequence[AnnotatedSchema],
) -> AnnotatedSchema:
    """The conservative upper merge of annotated schemas — an n-ary,
    order-independent operation.

    Classes and specializations are unioned exactly as in the weak upper
    merge; each arrow's constraint is the least upper bound, in the
    Figure 11 semilattice, of the opinions of the inputs that know both
    endpoint classes (absence over known classes is the paper's
    constraint ``0``; an unknown class is no opinion at all).  Because
    ``0`` (forbidden) and ``1`` (required) have no common upper bound,
    the merge fails — with an :class:`IncompatibleSchemasError` naming
    the offending arrow — when one schema forbids an arrow that another
    requires.  This is the *participation-aware upper merge*: stricter
    than the plain upper merge (which has no notion of "forbidden" and
    would simply union the arrows) and more informative than the lower
    merge (which weakens every disagreement to "optional").  In the
    paper's terms it is a merge concept lying in between the two,
    defined — as section 6 insists any valid merge must be — by an
    information ordering.

    Two precision notes, machine-checked in the property suite:

    * The result is an upper bound of the inputs and the least one
      *among upper bounds that assert no arrows beyond those some input
      asserts*.  Under :func:`annotated_leq` absence is information, so
      a true least upper bound would have to pad every un-opined
      ``(class, label, class)`` combination with the bottom constraint
      ``0/1`` — an object that does not exist over the unbounded label
      set ``L``.  The conservative reading is the useful one.
    * The operation is n-ary **by necessity**, not convenience: folding
      binary joins is *not* associative in definedness, because a
      binary join unions class scopes and thereby asserts constraint
      ``0`` on arrows between classes that no single input co-knew —
      negative information neither input carried.  This is precisely
      the section 3 phenomenon (intermediate merge results asserting
      more than their inputs breaks order-independence) resurfacing in
      the annotated world; the paper's remedy there (treat the merge as
      an operation on whole collections) is the remedy here too.  Any
      fold order still yields an upper bound that is ``⊒`` this n-ary
      result.
    """
    schema_list = list(schemas)
    if not schema_list:
        return AnnotatedSchema.empty()
    all_classes: Set[ClassName] = set()
    union_spec: Set[Tuple[ClassName, ClassName]] = set()
    candidate_arrows: Set[Arrow] = set()
    for schema in schema_list:
        all_classes |= schema.classes
        union_spec |= schema.spec
        candidate_arrows |= schema.present_arrows()
    closed_spec = relations.reflexive_transitive_closure(
        union_spec, all_classes
    )
    if not relations.is_antisymmetric(closed_spec):
        cycle = relations.find_cycle(closed_spec) or ()
        raise IncompatibleSchemasError(
            "annotated schemas are incompatible; their combined "
            "specializations contain the cycle "
            + " ==> ".join(str(c) for c in cycle),
            cycle=cycle,
        )
    entries = []
    for arrow in sorted(
        candidate_arrows, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
    ):
        # Every candidate is present in some input, so there is at least
        # one opinion; inputs that do not know both endpoint classes
        # have no say.
        opinions = _participation_opinions(schema_list, arrow)
        combined = opinions[0]
        for opinion in opinions[1:]:
            upper = lub(combined, opinion)
            if upper is None:
                source, label, target = arrow
                raise IncompatibleSchemasError(
                    f"participation conflict on {source} --{label}--> "
                    f"{target}: one schema forbids the arrow (constraint 0) "
                    "while another requires it (constraint 1); the two have "
                    "no common upper bound in the Figure 11 semilattice"
                )
            combined = upper
        if combined != Participation.ABSENT:
            entries.append((*arrow, combined))
    joined = AnnotatedSchema.build(
        classes=all_classes, arrows=entries, spec=closed_spec
    )
    # The closure discipline may strengthen an arrow (e.g. a required
    # arrow propagating down a new specialization edge) past what some
    # input permits over its own classes; the join then does not exist.
    for index, schema in enumerate(schema_list):
        if not annotated_leq(schema, joined):
            witness = _leq_witness(schema, joined)
            raise IncompatibleSchemasError(
                f"annotated join does not exist: the closure of the "
                f"combined schema contradicts input {index}"
                + (f" on {witness}" if witness else "")
            )
    return joined


def _leq_witness(left: AnnotatedSchema, right: AnnotatedSchema) -> str:
    """A human-readable reason why ``left ⊑ right`` fails (best effort)."""
    from repro.core.participation import leq as part_leq

    table_right = right.participation_table()
    for arrow, constraint in left.participation_table().items():
        opposing = table_right.get(arrow, Participation.ABSENT)
        if not part_leq(constraint, opposing):
            source, label, target = arrow
            return (
                f"{source} --{label}--> {target} ({constraint} vs {opposing})"
            )
    known = left.classes
    for arrow, constraint in table_right.items():
        source, _label, target = arrow
        if (
            source in known
            and target in known
            and arrow not in left.participation_table()
        ):
            return (
                f"{source} --{arrow[1]}--> {target} (absent, i.e. 0, vs "
                f"{constraint})"
            )
    return ""


def annotated_join(
    left: AnnotatedSchema, right: AnnotatedSchema
) -> AnnotatedSchema:
    """Binary form of :func:`annotated_join_all`.

    Merge whole collections with :func:`annotated_join_all` rather than
    folding this — see the n-ary function's docstring for why folds can
    strengthen the result or fail where the collection merge succeeds.
    """
    return annotated_join_all([left, right])


def annotated_meet(
    left: AnnotatedSchema, right: AnnotatedSchema
) -> AnnotatedSchema:
    """The greatest lower bound under :func:`annotated_leq` — *without*
    the class completion of section 6's lower merge.

    The carrier-level meet keeps only shared classes and shared
    specializations and takes the pointwise participation GLB over
    arrows whose endpoints survive.  :func:`repro.core.lower.lower_merge`
    is this meet *after* completing each input with the other's classes;
    the two agree whenever the inputs already share a class set.
    """
    kept = left.classes & right.classes
    merged_spec = frozenset(
        (p, q) for p, q in left.spec & right.spec if p in kept and q in kept
    )
    table: Dict[Arrow, Participation] = {}
    for arrow in left.present_arrows() | right.present_arrows():
        source, label, target = arrow
        if source not in kept or target not in kept:
            continue
        combined = glb_all(
            (
                left.participation_of(source, label, target),
                right.participation_of(source, label, target),
            )
        )
        if combined != Participation.ABSENT:
            table[arrow] = combined
    return AnnotatedSchema(kept, merged_spec, table)


class AnnotatedSchemaOrdering(InformationOrdering[AnnotatedSchema]):
    """Section 6's refined ordering on participation-annotated schemas.

    ``join_all`` is overridden to merge the whole collection at once:
    folding binary joins strengthens intermediate results (a §3-style
    order-dependence), so the n-ary primitive is the law-abiding one.
    """

    name = "annotated-schema ordering"

    def leq(self, left: AnnotatedSchema, right: AnnotatedSchema) -> bool:
        return annotated_leq(left, right)

    def join(
        self, left: AnnotatedSchema, right: AnnotatedSchema
    ) -> AnnotatedSchema:
        return annotated_join(left, right)

    def join_all(
        self, items: Iterable[AnnotatedSchema]
    ) -> AnnotatedSchema:
        return annotated_join_all(list(items))

    def meet(
        self, left: AnnotatedSchema, right: AnnotatedSchema
    ) -> AnnotatedSchema:
        return annotated_meet(left, right)

    def bottom(self) -> AnnotatedSchema:
        return AnnotatedSchema.empty()


# ----------------------------------------------------------------------
# The keyed ordering (section 5)
# ----------------------------------------------------------------------


def keyed_leq(left: KeyedSchema, right: KeyedSchema) -> bool:
    """``left ⊑ right``: schema inclusion plus pointwise key containment.

    This is the order implicit in section 5's definition of a
    *satisfactory* assignment: an upper bound of keyed schemas must
    contain each input's schema and each input's superkey family at
    every class.
    """
    if not is_sub(left.schema, right.schema):
        return False
    return all(
        right.keys_of(cls).contains_family(left.keys_of(cls))
        for cls in left.schema.classes
    )


def keyed_join(left: KeyedSchema, right: KeyedSchema) -> KeyedSchema:
    """The least upper bound of keyed schemas.

    The schema part is the weak join of Proposition 4.1; the key part
    is the unique minimal satisfactory assignment of section 5 — which
    is exactly what makes this the *least* upper bound rather than just
    an upper bound.  (The full keyed merge,
    :func:`repro.core.keys.merge_keyed`, additionally properizes the
    schema; the ordering works at the weak level where the lattice laws
    live.)
    """
    joined = weak_join(left.schema, right.schema)
    assignment = minimal_satisfactory_assignment(joined, [left, right])
    return KeyedSchema(joined, assignment)


def keyed_meet(left: KeyedSchema, right: KeyedSchema) -> KeyedSchema:
    """The greatest lower bound of keyed schemas.

    The schema part is the plain meet; the key part is the pointwise
    family intersection ``SK ∩ SK'`` of section 5's minimality argument,
    filtered to keys whose labels survive as arrows in the met schema
    (a key over vanished arrows is not expressible there, and any
    common lower bound's keys are — see the property tests).
    """
    met = weak_meet(left.schema, right.schema)
    assignment: Dict[ClassName, KeyFamily] = {}
    for cls in met.classes:
        family = left.keys_of(cls) & right.keys_of(cls)
        available = met.out_labels(cls)
        surviving = KeyFamily(
            key for key in family.min_keys if key <= available
        )
        if not surviving.is_empty():
            assignment[cls] = surviving
    return KeyedSchema(met, assignment)


class KeyedSchemaOrdering(InformationOrdering[KeyedSchema]):
    """Section 5's ordering on keyed schemas."""

    name = "keyed-schema ordering"

    def leq(self, left: KeyedSchema, right: KeyedSchema) -> bool:
        return keyed_leq(left, right)

    def join(self, left: KeyedSchema, right: KeyedSchema) -> KeyedSchema:
        return keyed_join(left, right)

    def meet(self, left: KeyedSchema, right: KeyedSchema) -> KeyedSchema:
        return keyed_meet(left, right)

    def bottom(self) -> KeyedSchema:
        return KeyedSchema(Schema.empty())


#: Singleton instances — the orderings are stateless.
WEAK_ORDERING = WeakSchemaOrdering()
ANNOTATED_ORDERING = AnnotatedSchemaOrdering()
KEYED_ORDERING = KeyedSchemaOrdering()


# ----------------------------------------------------------------------
# Generic law checkers — the executable form of the §6 criterion
# ----------------------------------------------------------------------


def _try_join(
    ordering: InformationOrdering[T], left: T, right: T
) -> Optional[T]:
    try:
        return ordering.join(left, right)
    except IncompatibleSchemasError:
        return None


def ordering_violations(
    ordering: InformationOrdering[T],
    samples: Sequence[T],
    describe: Callable[[T], str] = repr,
) -> List[str]:
    """Check that ``leq`` is a partial order over *samples*.

    Returns human-readable violation strings — reflexivity,
    antisymmetry and transitivity failures — with an empty list meaning
    the order laws held on every sampled combination.
    """
    problems: List[str] = []
    for item in samples:
        if not ordering.leq(item, item):
            problems.append(
                f"{ordering.name}: not reflexive at {describe(item)}"
            )
    indexed = list(enumerate(samples))
    for i, a in indexed:
        for j, b in indexed:
            if i == j:
                continue
            if (
                ordering.leq(a, b)
                and ordering.leq(b, a)
                and not ordering.equal(a, b)
            ):
                problems.append(
                    f"{ordering.name}: antisymmetry fails between sample "
                    f"{i} and sample {j}"
                )
    for i, a in indexed:
        for j, b in indexed:
            for k, c in indexed:
                if ordering.leq(a, b) and ordering.leq(b, c):
                    if not ordering.leq(a, c):
                        problems.append(
                            f"{ordering.name}: transitivity fails on "
                            f"samples ({i}, {j}, {k})"
                        )
    return problems


def merge_law_violations(
    ordering: InformationOrdering[T],
    samples: Sequence[T],
) -> List[str]:
    """Check LUB-hood and the §4 algebraic laws of ``join`` over *samples*.

    For every pair with a defined join the result must be an upper
    bound and below every sampled upper bound; joins must be
    commutative, idempotent, and associative on triples (including
    *agreeing on definedness* — if one association order fails, the
    other must too, which is the precise content of the paper's
    order-independence claim).
    """
    problems: List[str] = []
    for item in samples:
        joined = _try_join(ordering, item, item)
        if joined is None or not ordering.equal(joined, item):
            problems.append(f"{ordering.name}: join not idempotent")
    indexed = list(enumerate(samples))
    for i, a in indexed:
        for j, b in indexed[i + 1 :]:
            ab = _try_join(ordering, a, b)
            ba = _try_join(ordering, b, a)
            if (ab is None) != (ba is None):
                problems.append(
                    f"{ordering.name}: commutativity of definedness fails "
                    f"on samples ({i}, {j})"
                )
                continue
            if ab is None or ba is None:
                continue
            if not ordering.equal(ab, ba):
                problems.append(
                    f"{ordering.name}: commutativity fails on samples "
                    f"({i}, {j})"
                )
            if not (ordering.leq(a, ab) and ordering.leq(b, ab)):
                problems.append(
                    f"{ordering.name}: join of samples ({i}, {j}) is not "
                    "an upper bound"
                )
            for k, candidate in indexed:
                if (
                    ordering.leq(a, candidate)
                    and ordering.leq(b, candidate)
                    and not ordering.leq(ab, candidate)
                ):
                    problems.append(
                        f"{ordering.name}: join of samples ({i}, {j}) is "
                        f"not least (sample {k} is a smaller upper bound)"
                    )
    for i, a in indexed:
        for j, b in indexed:
            for k, c in indexed:
                ab = _try_join(ordering, a, b)
                bc = _try_join(ordering, b, c)
                left = _try_join(ordering, ab, c) if ab is not None else None
                right = _try_join(ordering, a, bc) if bc is not None else None
                if (left is None) != (right is None):
                    problems.append(
                        f"{ordering.name}: associativity of definedness "
                        f"fails on samples ({i}, {j}, {k})"
                    )
                elif left is not None and right is not None:
                    if not ordering.equal(left, right):
                        problems.append(
                            f"{ordering.name}: associativity fails on "
                            f"samples ({i}, {j}, {k})"
                        )
    return problems


def validate_merge_concept(
    ordering: InformationOrdering[T],
    samples: Sequence[T],
) -> List[str]:
    """Run every law checker — the §6 validity criterion in one call.

    A merge concept is "valid and well defined" in the paper's sense
    when this returns no violations over representative samples: its
    order is a partial order and its merge is that order's least upper
    bound, hence associative, commutative and idempotent.
    """
    return ordering_violations(ordering, samples) + merge_law_violations(
        ordering, samples
    )
