"""The consistency relationship of section 4.2.

Not every implicit class the merge invents corresponds to anything in
the real world: an implicit class below ``{Person, Invoice}`` asserts
that some objects are simultaneously people and invoices.  The paper's
remedy is a *consistency relationship* on the underlying class names —
a symmetric, reflexive compatibility predicate — together with the rule
that the merge fails (:class:`~repro.exceptions.InconsistentSchemasError`)
whenever some implicit class contains a pair of classes not related by
it.  "Checking consistency would be very efficient, since it just
requires examining the consistency relationship" — and indeed the check
below is a pair-enumeration over the (small) member sets of ``Imp``.

Two policies are provided because the paper leaves the default open:

* :meth:`ConsistencyRelation.permissive` — everything is consistent
  with everything (the merge never fails on consistency grounds);
* an explicit relation built from consistent pairs, where *unlisted*
  pairs are inconsistent.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Optional, Set, Tuple, Union

from repro.core.names import BaseName, ClassName, base_members, name
from repro.exceptions import InconsistentSchemasError

__all__ = ["ConsistencyRelation", "check_consistency"]

NameLike = Union[ClassName, str]


class ConsistencyRelation:
    """A symmetric, reflexive compatibility relation over base class names.

    Composite (implicit/generalization) names are judged through their
    underlying base members: an implicit class is real-world-meaningful
    iff every pair of base classes it conflates is consistent.
    """

    def __init__(self, pairs: Iterable[Tuple[NameLike, NameLike]] = ()):
        closed: Set[Tuple[BaseName, BaseName]] = set()
        for left_raw, right_raw in pairs:
            for left in base_members(name(left_raw)):
                for right in base_members(name(right_raw)):
                    closed.add((left, right))
                    closed.add((right, left))
        self._pairs: FrozenSet[Tuple[BaseName, BaseName]] = frozenset(closed)
        self._permissive = False

    @classmethod
    def permissive(cls) -> "ConsistencyRelation":
        """The total relation: every pair of classes is consistent."""
        instance = cls()
        instance._permissive = True
        return instance

    @classmethod
    def from_groups(
        cls, groups: Iterable[Iterable[NameLike]]
    ) -> "ConsistencyRelation":
        """Build a relation from clusters of mutually consistent classes.

        Classes within one group are pairwise consistent; classes from
        different groups are not (unless they also co-occur in another
        group).
        """
        pairs = []
        for group in groups:
            members = [name(m) for m in group]
            for i, left in enumerate(members):
                for right in members[i:]:
                    pairs.append((left, right))
        return cls(pairs)

    def consistent(self, left: NameLike, right: NameLike) -> bool:
        """May classes *left* and *right* share instances?"""
        if self._permissive:
            return True
        left_bases = base_members(name(left))
        right_bases = base_members(name(right))
        return all(
            a == b or (a, b) in self._pairs
            for a in left_bases
            for b in right_bases
        )

    def __repr__(self) -> str:
        if self._permissive:
            return "ConsistencyRelation.permissive()"
        return f"ConsistencyRelation({len(self._pairs)} pair(s))"


def check_consistency(
    implicit_member_sets: Iterable[AbstractSet[ClassName]],
    relation: Optional[ConsistencyRelation],
) -> None:
    """Vet every would-be implicit class against *relation*.

    *relation* being ``None`` means "no consistency information":
    everything passes, matching the paper's baseline behaviour.  Raises
    :class:`~repro.exceptions.InconsistentSchemasError` naming the first
    offending pair otherwise.
    """
    if relation is None:
        return
    for member_set in implicit_member_sets:
        members = sorted(member_set, key=str)
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                if not relation.consistent(left, right):
                    raise InconsistentSchemasError(
                        "merge would create an implicit class conflating "
                        f"{left} and {right}, which the consistency "
                        "relationship forbids",
                        offending_pair=(left, right),
                    )
