"""Structural diffs between schemas.

Interactive merging (section 1: "the operation is appropriate for the
design of interactive programs") needs to *explain* results: what did
the merge add relative to each input, what would be lost by a
candidate, how far apart are two proposals.  :class:`SchemaDiff`
captures the component-wise symmetric difference, and
:func:`explain_merge` specialises it to the common question "what did
the merge do to my schema".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.core.names import ClassName, sort_key
from repro.core.schema import Arrow, Schema, SpecEdge

__all__ = ["SchemaDiff", "diff", "explain_merge"]


@dataclass(frozen=True)
class SchemaDiff:
    """Everything present in one schema but not the other.

    ``left_only``/``right_only`` tuples hold (classes, arrows, strict
    specialization edges).  The diff is empty iff the schemas are
    equal, and one side is empty iff the other schema is above in the
    information ordering — both facts are exposed as predicates and
    verified by tests against :func:`repro.core.ordering.is_sub`.
    """

    left_only_classes: FrozenSet[ClassName]
    right_only_classes: FrozenSet[ClassName]
    left_only_arrows: FrozenSet[Arrow]
    right_only_arrows: FrozenSet[Arrow]
    left_only_spec: FrozenSet[SpecEdge]
    right_only_spec: FrozenSet[SpecEdge]

    def is_empty(self) -> bool:
        """Are the schemas structurally equal?"""
        return not (
            self.left_only_classes
            or self.right_only_classes
            or self.left_only_arrows
            or self.right_only_arrows
            or self.left_only_spec
            or self.right_only_spec
        )

    def left_is_sub(self) -> bool:
        """Is the left schema entirely contained in the right (``⊑``)?"""
        return not (
            self.left_only_classes
            or self.left_only_arrows
            or self.left_only_spec
        )

    def right_is_sub(self) -> bool:
        """Is the right schema entirely contained in the left?"""
        return not (
            self.right_only_classes
            or self.right_only_arrows
            or self.right_only_spec
        )

    def summary_lines(self) -> List[str]:
        """A human-readable itemisation, deterministic order."""
        lines: List[str] = []
        for title, classes in (
            ("only in left", self.left_only_classes),
            ("only in right", self.right_only_classes),
        ):
            for cls in sorted(classes, key=sort_key):
                lines.append(f"class {title}: {cls}")
        for title, arrows in (
            ("only in left", self.left_only_arrows),
            ("only in right", self.right_only_arrows),
        ):
            for source, label, target in sorted(
                arrows, key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
            ):
                lines.append(
                    f"arrow {title}: {source} --{label}--> {target}"
                )
        for title, spec in (
            ("only in left", self.left_only_spec),
            ("only in right", self.right_only_spec),
        ):
            for sub, sup in sorted(
                spec, key=lambda e: (sort_key(e[0]), sort_key(e[1]))
            ):
                lines.append(f"spec {title}: {sub} ==> {sup}")
        if not lines:
            lines.append("schemas are identical")
        return lines


def diff(left: Schema, right: Schema) -> SchemaDiff:
    """The component-wise symmetric difference of two schemas."""
    return SchemaDiff(
        left_only_classes=left.classes - right.classes,
        right_only_classes=right.classes - left.classes,
        left_only_arrows=left.arrows - right.arrows,
        right_only_arrows=right.arrows - left.arrows,
        left_only_spec=left.strict_spec() - right.strict_spec(),
        right_only_spec=right.strict_spec() - left.strict_spec(),
    )


def explain_merge(merged: Schema, original: Schema) -> List[str]:
    """What the merge added on top of *original* (never: removed).

    For an upper merge the 'only in original' side is empty by the
    upper-bound property; if it is not, the caller compared against the
    wrong merge and the discrepancy is reported loudly first.
    """
    delta = diff(original, merged)
    lines: List[str] = []
    if not delta.left_is_sub():
        lines.append(
            "WARNING: the 'merged' schema is missing parts of the "
            "original — it is not an upper bound:"
        )
        for cls in sorted(delta.left_only_classes, key=sort_key):
            lines.append(f"  missing class {cls}")
        for source, label, target in sorted(
            delta.left_only_arrows,
            key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2])),
        ):
            lines.append(f"  missing arrow {source} --{label}--> {target}")
        for sub, sup in sorted(
            delta.left_only_spec,
            key=lambda e: (sort_key(e[0]), sort_key(e[1])),
        ):
            lines.append(f"  missing spec {sub} ==> {sup}")
    added_classes = sorted(delta.right_only_classes, key=sort_key)
    if added_classes:
        lines.append(f"classes added ({len(added_classes)}):")
        lines.extend(f"  {cls}" for cls in added_classes)
    added_arrows = sorted(
        delta.right_only_arrows,
        key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2])),
    )
    if added_arrows:
        lines.append(f"arrows added ({len(added_arrows)}):")
        lines.extend(
            f"  {s} --{label}--> {t}" for s, label, t in added_arrows
        )
    added_spec = sorted(
        delta.right_only_spec,
        key=lambda e: (sort_key(e[0]), sort_key(e[1])),
    )
    if added_spec:
        lines.append(f"specializations added ({len(added_spec)}):")
        lines.extend(f"  {sub} ==> {sup}" for sub, sup in added_spec)
    if not lines:
        lines.append("merge added nothing (original was already complete)")
    return lines
