"""User assertions as elementary schemas (section 3).

A key design point of the paper is that inter-schema constraints
supplied by the designer — "class ``a1`` of schema ``G1`` specializes
class ``a2`` of schema ``G2``" — need no special machinery: each
assertion *is* a tiny schema, merged with the ordinary operation.
Because the merge is associative and commutative, "an arbitrary set of
constraints can be added in this fashion" and the result never depends
on the order the designer states them in.

This module provides constructors for those atomic schemas and a small
:class:`AssertionSet` convenience for collecting them.  Equating two
classes is deliberately *not* an assertion: the model's specialization
order is antisymmetric, so identification must be done by renaming
(:meth:`repro.core.schema.Schema.rename`), exactly as section 3
prescribes ("if two classes in different schemas have the same name,
then they are the same class").
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Union

from repro.core.names import ClassName, Label, check_label, name
from repro.core.schema import Schema

__all__ = [
    "class_exists",
    "isa",
    "arrow",
    "AssertionSet",
]

NameLike = Union[ClassName, str]


def class_exists(cls: NameLike) -> Schema:
    """The atomic schema asserting that class *cls* exists."""
    return Schema.build(classes=[name(cls)])


def isa(sub: NameLike, sup: NameLike) -> Schema:
    """The atomic schema asserting ``sub ==> sup``.

    This is the paper's canonical example: "we can treat ``a1 ==> a2``
    as an atomic schema that is to be merged with ``G1`` and then with
    ``G2``".
    """
    return Schema.build(spec=[(name(sub), name(sup))])


def arrow(source: NameLike, label: Label, target: NameLike) -> Schema:
    """The atomic schema asserting ``source --label--> target``."""
    return Schema.build(arrows=[(name(source), check_label(label), name(target))])


class AssertionSet:
    """An unordered collection of assertions, itself usable as schemas.

    The designer accumulates assertions over time; because each one is a
    schema and the merge is order-independent, the set can be replayed
    against any collection of schemas with a single merge call.
    """

    def __init__(self, assertions: Iterable[Schema] = ()):
        self._assertions: List[Schema] = list(assertions)

    def add_isa(self, sub: NameLike, sup: NameLike) -> "AssertionSet":
        """Record ``sub ==> sup``; returns self for chaining."""
        self._assertions.append(isa(sub, sup))
        return self

    def add_arrow(
        self, source: NameLike, label: Label, target: NameLike
    ) -> "AssertionSet":
        """Record ``source --label--> target``; returns self for chaining."""
        self._assertions.append(arrow(source, label, target))
        return self

    def add_class(self, cls: NameLike) -> "AssertionSet":
        """Record the existence of *cls*; returns self for chaining."""
        self._assertions.append(class_exists(cls))
        return self

    def add(self, schema: Schema) -> "AssertionSet":
        """Record an arbitrary schema-valued assertion."""
        self._assertions.append(schema)
        return self

    def __iter__(self) -> Iterator[Schema]:
        return iter(tuple(self._assertions))

    def __len__(self) -> int:
        return len(self._assertions)

    def __repr__(self) -> str:
        return f"AssertionSet({len(self._assertions)} assertion(s))"
