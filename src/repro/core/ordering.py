"""The information ordering on weak schemas and its lattice operations.

Section 4.1 orders weak schemas component-wise:

    ``G1 ⊑ G2``  iff  ``C1 ⊆ C2``, ``E1 ⊆ E2`` and ``S1 ⊆ S2``.

Reading: everything ``G1`` asserts (class existence, arrow obligations,
specializations) is also asserted by ``G2``.  The order is *bounded
complete* (Proposition 4.1): whenever two weak schemas have any common
upper bound they have a least one, computed by unioning the components
and closing — :func:`join`.  Dually, intersections of weak schemas are
always weak schemas, giving unconditional meets — :func:`meet`.

Because :func:`join` is a least upper bound in a partial order, the
induced merge is automatically associative, commutative and idempotent;
those laws are machine-checked in the property-test suite rather than
trusted.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import relations
from repro.core.names import ClassName
from repro.core.schema import Schema
from repro.exceptions import IncompatibleSchemasError

__all__ = [
    "is_sub",
    "is_strict_sub",
    "comparable",
    "compatible",
    "compatibility_cycle",
    "join",
    "join_all",
    "meet",
    "meet_all",
    "is_upper_bound",
    "is_lower_bound",
]


def is_sub(left: Schema, right: Schema) -> bool:
    """Does ``left ⊑ right`` hold in the information ordering?"""
    return (
        left.classes <= right.classes
        and left.arrows <= right.arrows
        and left.spec <= right.spec
    )


def is_strict_sub(left: Schema, right: Schema) -> bool:
    """``left ⊑ right`` and ``left != right``."""
    return is_sub(left, right) and left != right


def comparable(left: Schema, right: Schema) -> bool:
    """Are the two schemas related (either way) by ``⊑``?"""
    return is_sub(left, right) or is_sub(right, left)


def is_upper_bound(candidate: Schema, schemas: Iterable[Schema]) -> bool:
    """Is *candidate* above every schema in *schemas*?"""
    return all(is_sub(g, candidate) for g in schemas)


def is_lower_bound(candidate: Schema, schemas: Iterable[Schema]) -> bool:
    """Is *candidate* below every schema in *schemas*?"""
    return all(is_sub(candidate, g) for g in schemas)


def _union_spec_closure(
    schemas: Sequence[Schema],
) -> Tuple[frozenset, frozenset]:
    all_classes = frozenset().union(*(g.classes for g in schemas)) if schemas else frozenset()
    union_spec = set()
    for g in schemas:
        union_spec |= g.spec
    closed = relations.reflexive_transitive_closure(union_spec, all_classes)
    return all_classes, closed


def compatibility_cycle(
    schemas: Sequence[Schema],
) -> Optional[Tuple[ClassName, ...]]:
    """A witness cycle in ``(S1 ∪ .. ∪ Sn)*`` if one exists, else ``None``.

    Section 4.1: the collection is *compatible* iff this closure is
    antisymmetric.
    """
    _classes, closed = _union_spec_closure(list(schemas))
    if relations.is_antisymmetric(closed):
        return None
    return relations.find_cycle(closed)


def compatible(*schemas: Schema) -> bool:
    """Is the collection compatible (i.e. does the upper merge exist)?"""
    return compatibility_cycle(list(schemas)) is None


def join(left: Schema, right: Schema) -> Schema:
    """The least upper bound ``G1 ⊔ G2`` of Proposition 4.1.

    Raises :class:`~repro.exceptions.IncompatibleSchemasError` when the
    schemas are incompatible (no upper bound exists).
    """
    return join_all([left, right])


def join_all(schemas: Iterable[Schema]) -> Schema:
    """The least upper bound of a finite collection of weak schemas.

    Construction from the proof of Proposition 4.1:

    * ``C = C1 ∪ .. ∪ Cn``,
    * ``S = (S1 ∪ .. ∪ Sn)*`` — must be antisymmetric, else incompatible,
    * ``E`` = the W1/W2 closure of ``E1 ∪ .. ∪ En`` under the new ``S``.

    ``join_all([])`` is the empty schema, the bottom of the ordering, so
    the operation is a total monoid on compatible families.
    """
    schema_list: List[Schema] = list(schemas)
    if not schema_list:
        return Schema.empty()
    cycle = compatibility_cycle(schema_list)
    if cycle is not None:
        raise IncompatibleSchemasError(
            "schemas are incompatible; their combined specializations "
            "contain the cycle " + " ==> ".join(str(c) for c in cycle),
            cycle=cycle,
        )
    all_arrows = set()
    all_classes = set()
    all_spec = set()
    for g in schema_list:
        all_arrows |= g.arrows
        all_classes |= g.classes
        all_spec |= g.spec
    return Schema.build(classes=all_classes, arrows=all_arrows, spec=all_spec)


def meet(left: Schema, right: Schema) -> Schema:
    """The greatest lower bound ``G1 ⊓ G2`` under plain ``⊑``.

    Intersections of weak schemas are weak schemas (closure conditions
    are universally-quantified Horn implications, hence intersection-
    stable), so the meet always exists.  Note section 6's caveat: this
    *plain* meet discards everything the schemas disagree on; the
    participation-aware lower merge in :mod:`repro.core.lower` is the
    remedy.
    """
    return Schema(
        left.classes & right.classes,
        left.arrows & right.arrows,
        left.spec & right.spec,
    )


def meet_all(schemas: Iterable[Schema]) -> Schema:
    """The greatest lower bound of a non-empty collection.

    Raises :class:`ValueError` on an empty collection — the ordering has
    no top element to serve as the empty meet.
    """
    schema_list = list(schemas)
    if not schema_list:
        raise ValueError("meet of an empty collection is undefined (no top)")
    return reduce(meet, schema_list)
