"""The information ordering on weak schemas and its lattice operations.

Section 4.1 orders weak schemas component-wise:

    ``G1 ⊑ G2``  iff  ``C1 ⊆ C2``, ``E1 ⊆ E2`` and ``S1 ⊆ S2``.

Reading: everything ``G1`` asserts (class existence, arrow obligations,
specializations) is also asserted by ``G2``.  The order is *bounded
complete* (Proposition 4.1): whenever two weak schemas have any common
upper bound they have a least one, computed by unioning the components
and closing — :func:`join`.  Dually, intersections of weak schemas are
always weak schemas, giving unconditional meets — :func:`meet`.

Because :func:`join` is a least upper bound in a partial order, the
induced merge is automatically associative, commutative and idempotent;
those laws are machine-checked in the property-test suite rather than
trusted.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import relations
from repro.core.names import ClassName
from repro.core.schema import Schema, _schema_token
from repro.exceptions import IncompatibleSchemasError
from repro.perf.closure import ClosureBuilder
from repro.perf.memo import MemoCache

# Bounded memo caches (see repro.perf).  Schemas are immutable and
# interned, so a per-instance token (see schema._schema_token) is an
# honest memo key: hashing costs one int hash instead of re-hashing
# frozenset triples, results can never go stale, and the bound is
# purely a memory ceiling.
_IS_SUB_CACHE = MemoCache("ordering.is_sub", maxsize=32768)
_COMPAT_CACHE = MemoCache("ordering.compatible", maxsize=8192)
_MISS = MemoCache.MISS

__all__ = [
    "is_sub",
    "is_strict_sub",
    "comparable",
    "compatible",
    "compatibility_cycle",
    "join",
    "join_all",
    "meet",
    "meet_all",
    "is_upper_bound",
    "is_lower_bound",
]


def is_sub(left: Schema, right: Schema) -> bool:
    """Does ``left ⊑ right`` hold in the information ordering?

    Memoized on the (interned) operand pair — merge pipelines and
    bound checks ask the same containment questions repeatedly.
    """
    if left is right:
        return True
    key = (_schema_token(left), _schema_token(right))
    cached = _IS_SUB_CACHE.get(key)
    if cached is not _MISS:
        return cached
    result = left.classes <= right.classes and left.spec <= right.spec
    if result:
        # E1 ⊆ E2 checked row-wise on the reach indexes — the grouped
        # form of the same relation, and free on engine-built schemas
        # (their flat arrow set materializes lazily; no need to here).
        right_index = right._reach_index()
        result = all(
            targets <= right_index.get(row, frozenset())
            for row, targets in left._reach_index().items()
        )
    return _IS_SUB_CACHE.put(key, result)


def is_strict_sub(left: Schema, right: Schema) -> bool:
    """``left ⊑ right`` and ``left != right``."""
    return is_sub(left, right) and left != right


def comparable(left: Schema, right: Schema) -> bool:
    """Are the two schemas related (either way) by ``⊑``?"""
    return is_sub(left, right) or is_sub(right, left)


def is_upper_bound(candidate: Schema, schemas: Iterable[Schema]) -> bool:
    """Is *candidate* above every schema in *schemas*?"""
    return all(is_sub(g, candidate) for g in schemas)


def is_lower_bound(candidate: Schema, schemas: Iterable[Schema]) -> bool:
    """Is *candidate* below every schema in *schemas*?"""
    return all(is_sub(candidate, g) for g in schemas)


def _union_spec_closure(
    schemas: Sequence[Schema],
) -> Tuple[frozenset, frozenset]:
    all_classes = frozenset().union(*(g.classes for g in schemas)) if schemas else frozenset()
    union_spec = set()
    for g in schemas:
        union_spec |= g.spec
    closed = relations.reflexive_transitive_closure(union_spec, all_classes)
    return all_classes, closed


def compatibility_cycle(
    schemas: Sequence[Schema],
) -> Optional[Tuple[ClassName, ...]]:
    """A witness cycle in ``(S1 ∪ .. ∪ Sn)*`` if one exists, else ``None``.

    Section 4.1: the collection is *compatible* iff this closure is
    antisymmetric.
    """
    _classes, closed = _union_spec_closure(list(schemas))
    if relations.is_antisymmetric(closed):
        return None
    return relations.find_cycle(closed)


def compatible(*schemas: Schema) -> bool:
    """Is the collection compatible (i.e. does the upper merge exist)?

    Memoized on the operand tuple; the same families are probed over
    and over by interactive sessions and the analysis layer.
    """
    key = tuple(_schema_token(g) for g in schemas)
    cached = _COMPAT_CACHE.get(key)
    if cached is not _MISS:
        return cached
    return _COMPAT_CACHE.put(key, compatibility_cycle(list(schemas)) is None)


def join(left: Schema, right: Schema) -> Schema:
    """The least upper bound ``G1 ⊔ G2`` of Proposition 4.1.

    Raises :class:`~repro.exceptions.IncompatibleSchemasError` when the
    schemas are incompatible (no upper bound exists).

    Lattice fast paths: if one operand is below the other, the other
    *is* the join (both operands are already closed).
    """
    if left is right or is_sub(left, right):
        return right
    if is_sub(right, left):
        return left
    return join_all([left, right])


def join_all(schemas: Iterable[Schema]) -> Schema:
    """The least upper bound of a finite collection of weak schemas.

    Construction from the proof of Proposition 4.1:

    * ``C = C1 ∪ .. ∪ Cn``,
    * ``S = (S1 ∪ .. ∪ Sn)*`` — must be antisymmetric, else incompatible,
    * ``E`` = the W1/W2 closure of ``E1 ∪ .. ∪ En`` under the new ``S``.

    ``join_all([])`` is the empty schema, the bottom of the ordering, so
    the operation is a total monoid on compatible families.

    Implementation: the whole collection is folded through one
    :class:`repro.perf.closure.ClosureBuilder`.  The specialization
    closure is delta-updated per novel edge (cycles — incompatibility —
    surface during insertion, replacing the old separate compatibility
    pass that closed the union a second time) and arrows are closed once
    at the end with the grouped W1/W2 sweep.
    """
    schema_list: List[Schema] = list(schemas)
    if not schema_list:
        return Schema.empty()
    if len(schema_list) == 1:
        # A weak schema is its own join: already closed, already interned.
        return schema_list[0]
    builder = ClosureBuilder()
    try:
        builder.add_schemas(schema_list)
    except IncompatibleSchemasError:
        # Re-derive the witness from the full union so the error carries
        # the same cycle the pre-engine implementation reported.
        cycle = compatibility_cycle(schema_list) or ()
        raise IncompatibleSchemasError(
            "schemas are incompatible; their combined specializations "
            "contain the cycle " + " ==> ".join(str(c) for c in cycle),
            cycle=cycle,
        ) from None
    return builder.build()


def meet(left: Schema, right: Schema) -> Schema:
    """The greatest lower bound ``G1 ⊓ G2`` under plain ``⊑``.

    Intersections of weak schemas are weak schemas (closure conditions
    are universally-quantified Horn implications, hence intersection-
    stable), so the meet always exists.  Note section 6's caveat: this
    *plain* meet discards everything the schemas disagree on; the
    participation-aware lower merge in :mod:`repro.core.lower` is the
    remedy.
    """
    return Schema(
        left.classes & right.classes,
        left.arrows & right.arrows,
        left.spec & right.spec,
    )


def meet_all(schemas: Iterable[Schema]) -> Schema:
    """The greatest lower bound of a non-empty collection.

    Raises :class:`ValueError` on an empty collection — the ordering has
    no top element to serve as the empty meet.
    """
    schema_list = list(schemas)
    if not schema_list:
        raise ValueError("meet of an empty collection is undefined (no top)")
    return reduce(meet, schema_list)
