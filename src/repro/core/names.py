"""Class names, arrow labels and the naming of implicit classes.

The paper's schemas draw their nodes from a set ``N`` of classes and
their arrow labels from a set ``L`` (section 2).  We realise ``N`` as a
small algebraic datatype:

* :class:`BaseName` — an ordinary, user-supplied class name such as
  ``Dog`` or ``Person``;
* :class:`ImplicitName` — a class invented by the *upper* properization
  of section 4.2.  The paper requires that implicit classes "describe
  their own origin" so that subsequent merges can recognise them; we
  honour that by naming the class with the (frozen) set of classes it
  was introduced below;
* :class:`GenName` — a *generalization* class introduced above a set of
  classes by the lower properization of section 6.

Implicit and generalization names are *flattened* on construction: an
``ImplicitName`` whose member set itself contains implicit names absorbs
their members.  Flattening is exactly the mechanism that restores
associativity in the Figure 4/5 example — merging ``G1`` with ``G2`` and
then ``G3`` produces an implicit class below ``{D, E}`` first and then
one below ``{Imp(D,E), F}``, which flattening identifies with the class
``Imp(D, E, F)`` obtained in any other merge order.

Arrow labels are plain strings; a tiny :func:`check_label` guard keeps
obviously broken values (non-strings, empty strings) out of schemas.
"""

from __future__ import annotations

from functools import total_ordering
from typing import FrozenSet, Iterable, Tuple, Union

from repro.exceptions import SchemaValidationError
from repro.perf.interning import InternTable

# Hash-consing tables: structurally equal names become pointer-equal,
# so the millions of element comparisons inside closure computations
# short-circuit on identity (CPython compares identity before calling
# __eq__).  Structural __eq__/__hash__ stay correct for values evicted
# from a full table, so interning is transparent.
_BASE_INTERN = InternTable("names.base")
_IMPLICIT_INTERN = InternTable("names.implicit")
_GEN_INTERN = InternTable("names.gen")

__all__ = [
    "BaseName",
    "ImplicitName",
    "GenName",
    "ClassName",
    "Label",
    "name",
    "names",
    "check_label",
    "sort_key",
    "base_members",
]


Label = str


@total_ordering
class BaseName:
    """An ordinary class name, wrapping a non-empty string.

    Instances are immutable, hashable and totally ordered (by their
    string), so schemas built from them render deterministically.
    Hashes are precomputed: names are hashed millions of times inside
    closure computations, and the recursive structure of composite
    names makes on-demand hashing a measurable hot spot.
    """

    __slots__ = ("_value", "_hash")

    def __new__(cls, value: str):
        if cls is BaseName and type(value) is str:
            cached = _BASE_INTERN.get(value)
            if cached is not None:
                return cached
        if not isinstance(value, str) or not value:
            raise SchemaValidationError(
                f"class names must be non-empty strings, got {value!r}"
            )
        self = object.__new__(cls)
        object.__setattr__(self, "_value", value)
        object.__setattr__(self, "_hash", hash(("BaseName", value)))
        if cls is BaseName:
            _BASE_INTERN.put(value, self)
        return self

    def __init__(self, value: str):
        # Construction (and interning) happens in __new__; nothing to do.
        pass

    @property
    def value(self) -> str:
        """The underlying string."""
        return self._value

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("BaseName is immutable")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, BaseName) and self._value == other._value

    def __lt__(self, other) -> bool:
        return sort_key(self) < sort_key(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BaseName({self._value!r})"

    def __str__(self) -> str:
        return self._value


def _flatten(members: Iterable["ClassName"], kind) -> FrozenSet["ClassName"]:
    """Absorb nested names of the same *kind* into a flat member set."""
    flat = set()
    for member in members:
        if isinstance(member, kind):
            flat.update(member.members)
        else:
            flat.add(_as_name(member))
    return frozenset(flat)


@total_ordering
class ImplicitName:
    """The name of an implicit class introduced *below* a set of classes.

    Section 4.2 constructs, for every multi-element set ``X`` of minimal
    reachable classes, a new class ``X̄`` that specializes every member
    of ``X``.  Naming the class by ``X`` itself both records its origin
    (as the paper requires) and makes equal origins collide, which is
    what keeps repeated merges associative.
    """

    __slots__ = ("_members", "_hash")

    def __new__(cls, members: Iterable[Union["ClassName", str]]):
        flat = _flatten(members, ImplicitName)
        if len(flat) < 2:
            raise SchemaValidationError(
                "an implicit class must sit below at least two classes, "
                f"got members {sorted(map(str, flat))!r}"
            )
        if cls is ImplicitName:
            cached = _IMPLICIT_INTERN.get(flat)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "_members", flat)
        object.__setattr__(self, "_hash", hash(("ImplicitName", flat)))
        if cls is ImplicitName:
            _IMPLICIT_INTERN.put(flat, self)
        return self

    def __init__(self, members: Iterable[Union["ClassName", str]]):
        pass

    @property
    def members(self) -> FrozenSet["ClassName"]:
        """The classes this implicit class was introduced below."""
        return self._members

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("ImplicitName is immutable")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, ImplicitName) and self._members == other._members

    def __lt__(self, other) -> bool:
        return sort_key(self) < sort_key(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in sorted(self._members, key=sort_key))
        return f"ImplicitName({{{inner}}})"

    def __str__(self) -> str:
        inner = "&".join(str(m) for m in sorted(self._members, key=sort_key))
        return f"<{inner}>"


@total_ordering
class GenName:
    """The name of a generalization class introduced *above* a set of classes.

    Section 6 notes that the lower properization introduces implicit
    classes "above, rather than below, the sets of proper schemas that
    they represent".  We keep those distinct from :class:`ImplicitName`
    because a class above ``{A, B}`` and a class below ``{A, B}`` are
    different classes and must never collide.
    """

    __slots__ = ("_members", "_hash")

    def __new__(cls, members: Iterable[Union["ClassName", str]]):
        flat = _flatten(members, GenName)
        if len(flat) < 2:
            raise SchemaValidationError(
                "a generalization class must sit above at least two "
                f"classes, got members {sorted(map(str, flat))!r}"
            )
        if cls is GenName:
            cached = _GEN_INTERN.get(flat)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "_members", flat)
        object.__setattr__(self, "_hash", hash(("GenName", flat)))
        if cls is GenName:
            _GEN_INTERN.put(flat, self)
        return self

    def __init__(self, members: Iterable[Union["ClassName", str]]):
        pass

    @property
    def members(self) -> FrozenSet["ClassName"]:
        """The classes this generalization class was introduced above."""
        return self._members

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("GenName is immutable")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, GenName) and self._members == other._members

    def __lt__(self, other) -> bool:
        return sort_key(self) < sort_key(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in sorted(self._members, key=sort_key))
        return f"GenName({{{inner}}})"

    def __str__(self) -> str:
        inner = "|".join(str(m) for m in sorted(self._members, key=sort_key))
        return f"[{inner}]"


ClassName = Union[BaseName, ImplicitName, GenName]


def _as_name(value: Union[ClassName, str]) -> ClassName:
    if isinstance(value, (BaseName, ImplicitName, GenName)):
        return value
    if isinstance(value, str):
        return BaseName(value)
    raise SchemaValidationError(
        f"expected a class name or string, got {type(value).__name__}: {value!r}"
    )


def name(value: Union[ClassName, str]) -> ClassName:
    """Coerce a string (or pass through an existing name) to a class name.

    Allowing plain strings everywhere keeps user code close to the
    paper's notation: ``schema.has_arrow("Dog", "owner", "Person")``.
    """
    return _as_name(value)


def names(values: Iterable[Union[ClassName, str]]) -> FrozenSet[ClassName]:
    """Coerce an iterable of strings/names to a frozen set of names."""
    return frozenset(_as_name(v) for v in values)


def check_label(label: Label) -> Label:
    """Validate an arrow label (a non-empty string) and return it."""
    if not isinstance(label, str) or not label:
        raise SchemaValidationError(
            f"arrow labels must be non-empty strings, got {label!r}"
        )
    return label


def sort_key(cls: ClassName) -> Tuple:
    """A total-order key over all three name kinds.

    Base names sort before implicit names, which sort before
    generalization names; composite names sort by their (recursively
    keyed) member tuples.  Used everywhere rendering or iteration must
    be deterministic.
    """
    if isinstance(cls, BaseName):
        return (0, cls.value)
    if isinstance(cls, ImplicitName):
        return (1, tuple(sorted(sort_key(m) for m in cls.members)))
    if isinstance(cls, GenName):
        return (2, tuple(sorted(sort_key(m) for m in cls.members)))
    raise SchemaValidationError(f"not a class name: {cls!r}")


def base_members(cls: ClassName) -> FrozenSet[BaseName]:
    """The set of base names underlying *cls*.

    For a base name this is the singleton; for composite names, the
    union of the base members of every member.  Useful for consistency
    checking (section 4.2), which is phrased over the original classes.
    """
    if isinstance(cls, BaseName):
        return frozenset({cls})
    collected: set = set()
    for member in cls.members:
        collected.update(base_members(member))
    return frozenset(collected)
