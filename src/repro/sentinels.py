"""Shared sentinel values — one module instead of per-cache copies.

:class:`~repro.perf.memo.MemoCache` and
:class:`~repro.service.snapshots.SnapshotCache` both need a "no cached
value" marker that is distinct from every cacheable value (``None`` and
``False`` are legitimate cache entries).  Each used to carry its own
private ``_Miss`` class; :class:`Sentinel` is the one shared
implementation.  Identity is the contract: callers compare with ``is``
against the specific sentinel instance, never by name or type.

This module imports nothing from the rest of the package, so the
core-free layers (:mod:`repro.perf.memo`, :mod:`repro.obs`) can use it
without creating an import cycle.

>>> MISS = Sentinel("Example.MISS")
>>> MISS
<Example.MISS>
>>> MISS is Sentinel("Example.MISS")  # identity, not the name, is the point
False
>>> bool(MISS)
True
"""

from __future__ import annotations

__all__ = ["Sentinel"]


class Sentinel:
    """A unique marker object with a readable repr.

    Instances carry no state beyond their display name; equality is
    identity (inherited from ``object``), so two sentinels with the same
    name are still distinct markers.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"
