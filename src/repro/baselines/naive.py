"""The naive binary merger — the paper's Figure 5 counterexample.

Section 3 shows what goes wrong if implicit classes are "given the same
status as ordinary classes": each binary merge invents *fresh*,
anonymous classes (the figure's ``X?``, ``Y?``), later merges cannot
recognise them, and the final schema depends on the merge order —
"binary merges are not associative".

This module implements that strawman faithfully so the benchmarks can
measure the failure the paper diagnoses:

* :func:`naive_binary_merge` — weak join followed by a properization
  that names implicit classes ``?1``, ``?2``, ... (anonymous
  :class:`~repro.core.names.BaseName` classes, numbered per merge, with
  no origin information);
* :func:`naive_merge_sequence` — left-fold of the binary merge over a
  given order;
* :func:`order_sensitivity` — run every merge order and count the
  distinct results; the paper's claim is that this exceeds 1 for the
  Figure 4 schemas while our merge always yields exactly 1.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.implicit import implicit_sets
from repro.core.merge import weak_merge
from repro.core.names import BaseName, ClassName, Label, sort_key
from repro.core.proper import check_proper
from repro.core.schema import Schema

__all__ = [
    "naive_binary_merge",
    "naive_merge_sequence",
    "order_sensitivity",
]


def _fresh_name(schema_classes: FrozenSet[ClassName], counter: int) -> BaseName:
    """The next anonymous class name (``?1``, ``?2``, ...) not in use."""
    while True:
        candidate = BaseName(f"?{counter}")
        if candidate not in schema_classes:
            return candidate
        counter += 1


def _naive_properize(schema: Schema) -> Schema:
    """Properize with anonymous, origin-free implicit classes.

    Identical to :func:`repro.core.implicit.properize` except that the
    invented classes are numbered ``BaseName`` classes.  Because the
    names carry no origin, a subsequent merge treats them as ordinary
    user classes — precisely the behaviour that breaks associativity.
    """
    imp = implicit_sets(schema)
    if not imp:
        return check_proper(schema)
    ordered_sets = sorted(
        imp, key=lambda members: sorted(sort_key(m) for m in members)
    )
    name_of: Dict[FrozenSet[ClassName], BaseName] = {}
    used = set(schema.classes)
    counter = 1
    for member_set in ordered_sets:
        fresh = _fresh_name(frozenset(used), counter)
        counter = int(fresh.value[1:]) + 1
        used.add(fresh)
        name_of[member_set] = fresh

    new_classes = set(schema.classes) | set(name_of.values())
    labels = schema.labels()

    def reach_bar(node: ClassName, label: Label) -> FrozenSet[ClassName]:
        for member_set, fresh in name_of.items():
            if fresh == node:
                return schema.reach_set(member_set, label)
        return schema.reach(node, label)

    new_arrows: Set[Tuple[ClassName, Label, ClassName]] = set()
    for node in new_classes:
        for label in labels:
            reached = reach_bar(node, label)
            if not reached:
                continue
            for target in reached:
                new_arrows.add((node, label, target))
            for member_set, fresh in name_of.items():
                if member_set <= reached:
                    new_arrows.add((node, label, fresh))

    spec_pairs = schema.spec
    new_spec: Set[Tuple[ClassName, ClassName]] = set(spec_pairs)
    for x_members, x_name in name_of.items():
        for y_members, y_name in name_of.items():
            if x_name != y_name and all(
                any((q, p) in spec_pairs for q in x_members)
                for p in y_members
            ):
                new_spec.add((x_name, y_name))
        for p in schema.classes:
            if any((q, p) in spec_pairs for q in x_members):
                new_spec.add((x_name, p))
            if all((p, q) in spec_pairs for q in x_members):
                new_spec.add((p, x_name))

    return check_proper(
        Schema.build(classes=new_classes, arrows=new_arrows, spec=new_spec)
    )


def naive_binary_merge(left: Schema, right: Schema) -> Schema:
    """One naive binary merge: weak join + anonymous properization."""
    return _naive_properize(weak_merge(left, right))


def naive_merge_sequence(schemas: Sequence[Schema]) -> Schema:
    """Left-fold the naive binary merge over *schemas* in the given order."""
    if not schemas:
        return Schema.empty()
    result = schemas[0]
    for nxt in schemas[1:]:
        result = naive_binary_merge(result, nxt)
    return result


def order_sensitivity(schemas: Sequence[Schema]) -> Dict[str, object]:
    """Measure how much the naive merge depends on merge order.

    Runs :func:`naive_merge_sequence` over every permutation and
    reports the number of distinct results, the class-count spread and
    the permutation→result mapping sizes.  A deterministic, associative
    merger scores ``distinct_results == 1``.
    """
    results: List[Schema] = []
    for order in permutations(range(len(schemas))):
        merged = naive_merge_sequence([schemas[i] for i in order])
        results.append(merged)
    distinct = set(results)
    class_counts = sorted(len(r.classes) for r in distinct)
    return {
        "permutations": len(results),
        "distinct_results": len(distinct),
        "class_counts": class_counts,
        "results": distinct,
    }
