"""Baseline merging algorithms the paper argues against."""
