"""A heuristic sequential integrator in the style the paper surveys.

The pre-1992 integration systems the paper cites — Motro's superviews
[1], Multibase [2], Navathe-Elmasri-Larson [3] — integrate schemas
*pairwise and heuristically*: when two views disagree about an
attribute's class, the tool (or the designer, prompted by the tool)
picks one.  The paper's criticism is that such choices make the result
depend on integration order, so "user assertions" degrade into "guiding
heuristics".

:func:`heuristic_binary_merge` distils that behaviour into a minimal,
deterministic strawman: union the two schemas, and wherever an arrow
ends up with several minimal targets, *keep only the alphabetically
least* (a stand-in for "the designer picked one").  It never invents
classes, always returns a proper schema — and is both **lossy**
(discarded targets are information the inputs asserted) and
**order-sensitive** when folded over three or more schemas, which
:func:`heuristic_order_sensitivity` quantifies for the benchmark
comparing it against our merge.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Sequence, Set

from repro.core.merge import weak_merge
from repro.core.names import ClassName, sort_key
from repro.core.proper import check_proper
from repro.core.schema import Arrow, Schema

__all__ = [
    "heuristic_binary_merge",
    "heuristic_merge_sequence",
    "heuristic_order_sensitivity",
    "lost_information",
]


def _prune_to_least_target(schema: Schema) -> Schema:
    """Resolve every multi-minimal reach set by suppressing alternatives.

    While some ``(p, a)`` has no least target, pick its alphabetically
    least minimal target as the survivor and delete **every** arrow
    labelled ``a`` into the specialization down-set of the losing
    minimal targets.  Deleting a down-closed target set keeps the arrow
    relation W1/W2-closed (an inherited or lifted copy of a surviving
    arrow never lands in the deleted region), so the loop strictly
    shrinks the arrow set and terminates with a proper schema.

    This global suppression is exactly the cost the paper attributes to
    heuristic integrators: information one view asserted is silently
    discarded instead of being represented by a new class.
    """
    from repro.core.proper import properness_violations

    current = schema
    while True:
        violations = properness_violations(current)
        if not violations:
            return current
        source, label, minimal = violations[0]
        ordered = sorted(minimal, key=sort_key)
        losers = ordered[1:]
        doomed: Set[ClassName] = set()
        for loser in losers:
            doomed |= current.specializations_of(loser)
        kept = frozenset(
            (s, a, t)
            for (s, a, t) in current.arrows
            if not (a == label and t in doomed)
        )
        current = Schema(current.classes, kept, current.spec)


def heuristic_binary_merge(left: Schema, right: Schema) -> Schema:
    """Union the schemas, then heuristically prune to a proper schema."""
    return check_proper(_prune_to_least_target(weak_merge(left, right)))


def heuristic_merge_sequence(schemas: Sequence[Schema]) -> Schema:
    """Left-fold :func:`heuristic_binary_merge` in the given order."""
    if not schemas:
        return Schema.empty()
    result = _prune_to_least_target(schemas[0])
    for nxt in schemas[1:]:
        result = heuristic_binary_merge(result, nxt)
    return result


def heuristic_order_sensitivity(
    schemas: Sequence[Schema],
) -> Dict[str, object]:
    """Distinct results of the heuristic fold across all merge orders."""
    results: List[Schema] = []
    for order in permutations(range(len(schemas))):
        results.append(
            heuristic_merge_sequence([schemas[i] for i in order])
        )
    distinct = set(results)
    return {
        "permutations": len(results),
        "distinct_results": len(distinct),
        "arrow_counts": sorted(len(r.arrows) for r in distinct),
        "results": distinct,
    }


def lost_information(
    merged: Schema, inputs: Sequence[Schema]
) -> List[Arrow]:
    """Arrows some input asserted that *merged* silently dropped.

    Our merge never loses arrows (it is an upper bound); the heuristic
    baseline does, and this function itemises the damage for the
    benchmark report.
    """
    lost: List[Arrow] = []
    for schema in inputs:
        for arrow in schema.arrows:
            if arrow not in merged.arrows:
                lost.append(arrow)
    return sorted(
        set(lost), key=lambda e: (sort_key(e[0]), e[1], sort_key(e[2]))
    )
