"""Multivalued arrows — the §7 extension ("arrows as multivalued
functions as in [2]; [5] shows how this idea can be extended to our
model").

Multibase's functional model distinguishes *single-valued* functions
(``Dog.age``) from *multivalued* ones (``Person.phones``).  We carry a
valence annotation per ``(class, label)`` pair on top of an ordinary
schema:

* ``SINGLE`` — for each instance the attribute has exactly one value
  (the plain proper-schema reading);
* ``MULTI``  — the attribute's value is a finite *set* of instances of
  the target class.

Merging follows the same least-upper-bound discipline as everything
else in the library: valences are ordered ``SINGLE < MULTI`` (a
single-valued function *is* a multivalued one whose images are
singletons, so MULTI is the weaker/more permissive statement about
structure but the ordering that makes merges exist is information-wise:
``SINGLE`` asserts strictly more).  Two schemas disagreeing about a
label merge to ``SINGLE`` — the union of their constraints — exactly as
an arrow present in one schema and absent in the other merges to
present.  The dual choice (``MULTI`` wins) would be the *lower*-merge
rule; both are provided.

Instance semantics: a multivalued attribute is represented by the set
``{(oid, label, target_oid)}`` of link triples; satisfaction requires
every link target to lie in the declared class and single-valued labels
to have exactly one link per source object.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple, Union

from repro.core.merge import upper_merge
from repro.core.names import ClassName, Label, name
from repro.core.schema import Schema
from repro.exceptions import SchemaValidationError

__all__ = [
    "Valence",
    "MultivaluedSchema",
    "merge_multivalued",
    "violations_multivalued",
    "satisfies_multivalued",
]

NameLike = Union[ClassName, str]


class Valence(enum.Enum):
    """How many values an attribute takes per instance."""

    SINGLE = "single"
    MULTI = "multi"

    def __str__(self) -> str:
        return self.value


def _stricter(left: Valence, right: Valence) -> Valence:
    """The upper-merge combination: SINGLE (more information) wins."""
    if Valence.SINGLE in (left, right):
        return Valence.SINGLE
    return Valence.MULTI


def _looser(left: Valence, right: Valence) -> Valence:
    """The lower-merge combination: MULTI (less information) wins."""
    if Valence.MULTI in (left, right):
        return Valence.MULTI
    return Valence.SINGLE


class MultivaluedSchema:
    """A schema plus a valence table over ``(class, label)`` pairs.

    Labels missing from the table default to ``SINGLE`` (the plain
    reading of section 2).  Valences must respect specialization: a
    label single-valued on ``q`` cannot be multivalued on a
    specialization ``p ==> q`` (instances of ``p`` are instances of
    ``q`` and would violate ``q``'s cardinality), and the constructor
    completes the table downward accordingly.
    """

    __slots__ = ("_schema", "_valences")

    def __init__(
        self,
        schema: Schema,
        valences: Mapping[Tuple[NameLike, Label], Valence] = (),
    ):
        table: Dict[Tuple[ClassName, Label], Valence] = {}
        for (cls_raw, label), valence in dict(valences).items():
            cls = name(cls_raw)
            if cls not in schema.classes:
                raise SchemaValidationError(
                    f"valence table mentions unknown class {cls}"
                )
            if label not in schema.out_labels(cls):
                raise SchemaValidationError(
                    f"valence table mentions {cls}.{label}, but {cls} has "
                    f"no {label!r}-arrow"
                )
            table[(cls, label)] = valence
        # Propagate SINGLE down the specialization order (a subclass
        # cannot weaken an inherited cardinality).
        for (cls, label), valence in list(table.items()):
            if valence != Valence.SINGLE:
                continue
            for sub in schema.specializations_of(cls):
                existing = table.get((sub, label))
                if existing == Valence.MULTI:
                    raise SchemaValidationError(
                        f"{sub}.{label} cannot be multivalued: it is "
                        f"single-valued on the generalization {cls}"
                    )
                table[(sub, label)] = Valence.SINGLE
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_valences", table)

    @property
    def schema(self) -> Schema:
        """The underlying schema."""
        return self._schema

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("MultivaluedSchema is immutable")

    def valence_of(self, cls: NameLike, label: Label) -> Valence:
        """The valence of ``cls``'s *label*-arrows (default SINGLE)."""
        return self._valences.get((name(cls), label), Valence.SINGLE)

    def multi_labels(self, cls: NameLike) -> FrozenSet[Label]:
        """Labels declared multivalued on *cls*."""
        p = name(cls)
        return frozenset(
            label
            for (source, label), valence in self._valences.items()
            if source == p and valence == Valence.MULTI
        )

    def valence_table(self) -> Dict[Tuple[ClassName, Label], Valence]:
        """A copy of the explicit valence entries."""
        return dict(self._valences)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MultivaluedSchema):
            return NotImplemented
        if self._schema != other._schema:
            return False
        pairs = {
            (cls, label)
            for cls in self._schema.classes
            for label in self._schema.out_labels(cls)
        }
        return all(
            self.valence_of(cls, label) == other.valence_of(cls, label)
            for cls, label in pairs
        )

    def __hash__(self) -> int:
        explicit_multi = frozenset(
            key
            for key, valence in self._valences.items()
            if valence == Valence.MULTI
        )
        return hash((self._schema, explicit_multi))

    def __repr__(self) -> str:
        multi = sum(
            1 for v in self._valences.values() if v == Valence.MULTI
        )
        return (
            f"MultivaluedSchema({self._schema!r}, {multi} multivalued "
            "label(s))"
        )


def violations_multivalued(
    instance,
    schema: MultivaluedSchema,
    links: Iterable[Tuple[object, Label, object]] = (),
) -> List[str]:
    """Instance-level meaning of valences.

    Single-valued labels are checked through the ordinary valuation of
    :class:`~repro.instances.instance.Instance` (exactly one value,
    typed by the schema — delegated to
    :func:`repro.instances.satisfaction.violations_weak`).  Multivalued
    labels are carried by *links* — triples ``(oid, label, target_oid)``
    — of which an object may have any number, each typed by the arrow's
    targets.  A label may not appear both in the valuation and in the
    link set for the same object (that would leave its valence
    ambiguous).
    """
    from repro.instances.satisfaction import violations_weak

    link_list = list(links)
    multi_pairs = {
        (cls, label)
        for cls in schema.schema.classes
        for label in schema.multi_labels(cls)
    }
    # Single-valued obligations: check the plain schema restricted to
    # arrows whose (source, label) is single-valued.
    single_arrows = frozenset(
        (s, a, t)
        for (s, a, t) in schema.schema.arrows
        if (s, a) not in multi_pairs
    )
    single_schema = Schema(
        schema.schema.classes, single_arrows, schema.schema.spec
    )
    problems = violations_weak(instance, single_schema)
    # Multivalued obligations: every link is typed; no valuation entry
    # shadows a multivalued label.
    for oid, label, target in link_list:
        sources = [
            cls
            for cls in instance.classes_of(oid)
            if label in schema.multi_labels(cls)
        ]
        if not sources:
            problems.append(
                f"link ({oid!r}, {label!r}, {target!r}) has no class of "
                f"{oid!r} declaring {label!r} multivalued"
            )
            continue
        for cls in sources:
            for arrow_target in schema.schema.reach(cls, label):
                if target not in instance.extent(arrow_target):
                    problems.append(
                        f"link target {target!r} of ({oid!r}, {label!r}) "
                        f"is not in extent({arrow_target})"
                    )
    for cls, label in sorted(multi_pairs, key=lambda p: (str(p[0]), p[1])):
        for oid in sorted(instance.extent(cls), key=repr):
            if instance.value(oid, label) is not None:
                problems.append(
                    f"({oid!r}).{label} uses the single-valued valuation "
                    f"but {cls} declares {label!r} multivalued"
                )
    return problems


def satisfies_multivalued(
    instance,
    schema: MultivaluedSchema,
    links: Iterable[Tuple[object, Label, object]] = (),
) -> bool:
    """Does *instance* (with *links*) satisfy the multivalued schema?"""
    return not violations_multivalued(instance, schema, links)


def merge_multivalued(
    *inputs: MultivaluedSchema,
    assertions: Iterable[Schema] = (),
    rule: str = "upper",
) -> MultivaluedSchema:
    """Merge multivalued schemas under the chosen valence rule.

    ``rule="upper"`` (default) is the LUB discipline: a label any input
    declares single-valued stays single-valued (the merge presents the
    union of the constraints).  ``rule="lower"`` is the federated
    reading: a label any input declares multivalued becomes multivalued
    (every input's instances must satisfy the merge).  Like every other
    merge in the library, both rules are order-independent; the test
    suite checks it.
    """
    if rule not in ("upper", "lower"):
        raise SchemaValidationError(
            f"rule must be 'upper' or 'lower', got {rule!r}"
        )
    combine = _stricter if rule == "upper" else _looser
    merged_schema = upper_merge(
        *(m.schema for m in inputs), assertions=assertions
    )
    table: Dict[Tuple[ClassName, Label], Valence] = {}
    for source in inputs:
        for (cls, label), valence in source.valence_table().items():
            existing = table.get((cls, label))
            table[(cls, label)] = (
                valence if existing is None else combine(existing, valence)
            )
    # Keep only entries that survived into the merged schema (implicit
    # classes acquire their members' labels through inheritance, which
    # the constructor's downward propagation completes).
    table = {
        (cls, label): valence
        for (cls, label), valence in table.items()
        if cls in merged_schema.classes
        and label in merged_schema.out_labels(cls)
    }
    return MultivaluedSchema(merged_schema, table)
