"""Extensions the paper's conclusion sketches as future work."""
