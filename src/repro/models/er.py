"""The Entity-Relationship substrate model and its round-trip translation.

Section 2 uses the ER model as the motivating restricted model
(Figures 1 and 2): entities and relationships become classes, attribute
edges and role edges become labelled arrows, ISA hierarchies become
specializations, and the whole diagram is a stratified schema under
:data:`~repro.models.strata.ER_STRATIFICATION`.  Section 5 adds the key
story: a role labelled "1" on a binary relationship is the same
assertion as a key consisting of the *other* role (the Advisor
example), while n-ary cardinality labels are famously ambiguous — the
paper cites four mutually inconsistent interpretations — so this module
only derives keys from cardinalities for binary relationships and lets
n-ary relationships declare key sets explicitly.

The merge-by-translation pipeline of section 7 is :func:`merge_er`:
translate each diagram into the general model, merge there (optionally
with keys), check strata preservation, and translate back.  Implicit
classes survive the round trip as entities/relationships whose names
record their origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple, Union

from repro.core.keys import KeyFamily, KeyedSchema
from repro.core.names import ClassName, name, sort_key
from repro.core.schema import Schema
from repro.exceptions import TranslationError
from repro.models.strata import (
    ER_STRATIFICATION,
    StratifiedSchema,
    merge_stratified,
)

__all__ = [
    "ERAttribute",
    "EREntity",
    "ERRelationship",
    "ERDiagram",
    "to_schema",
    "to_keyed_schema",
    "from_schema",
    "merge_er",
    "cardinality_keys",
]

NameLike = Union[ClassName, str]

#: The two cardinality annotations the paper discusses for binary
#: relationships: "1" (at most one) and "N" (unrestricted).
CARDINALITIES = ("1", "N")


@dataclass(frozen=True)
class ERAttribute:
    """A named attribute with its value domain (``addr:place``)."""

    name: str
    domain: str

    def __post_init__(self):
        if not self.name or not self.domain:
            raise TranslationError(
                "attribute names and domains must be non-empty"
            )


@dataclass(frozen=True)
class EREntity:
    """An entity set, its attributes, ISA parents and declared keys."""

    name: str
    attributes: Tuple[ERAttribute, ...] = ()
    isa: Tuple[str, ...] = ()
    keys: Tuple[FrozenSet[str], ...] = ()

    def __init__(
        self,
        name: str,
        attributes: Iterable[ERAttribute] = (),
        isa: Iterable[str] = (),
        keys: Iterable[Iterable[str]] = (),
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self,
            "attributes",
            tuple(sorted(attributes, key=lambda a: a.name)),
        )
        object.__setattr__(self, "isa", tuple(sorted(isa)))
        object.__setattr__(
            self, "keys", tuple(frozenset(k) for k in keys)
        )
        if not name:
            raise TranslationError("entity names must be non-empty")
        seen = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise TranslationError(
                    f"entity {name} declares attribute "
                    f"{attribute.name!r} twice"
                )
            seen.add(attribute.name)
        for key in self.keys:
            missing = key - seen
            if missing:
                raise TranslationError(
                    f"entity {name}: key {sorted(key)} uses unknown "
                    f"attribute(s) {sorted(missing)}"
                )

    def attribute_names(self) -> FrozenSet[str]:
        """The names of this entity's own (non-inherited) attributes."""
        return frozenset(a.name for a in self.attributes)


@dataclass(frozen=True)
class ERRelationship:
    """A relationship set with named roles, cardinalities and attributes.

    ``roles`` maps role names to entity names; ``cardinalities`` maps a
    subset of role names to ``"1"`` or ``"N"`` (unlabelled roles default
    to ``"N"``); ``isa`` allows relationship specialization, the
    Figure 9 pattern (``Advisor ==> Committee``).
    """

    name: str
    roles: Tuple[Tuple[str, str], ...]
    cardinalities: Tuple[Tuple[str, str], ...] = ()
    attributes: Tuple[ERAttribute, ...] = ()
    isa: Tuple[str, ...] = ()
    keys: Tuple[FrozenSet[str], ...] = ()

    def __init__(
        self,
        name: str,
        roles: Mapping[str, str],
        cardinalities: Mapping[str, str] = (),
        attributes: Iterable[ERAttribute] = (),
        isa: Iterable[str] = (),
        keys: Iterable[Iterable[str]] = (),
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "roles", tuple(sorted(dict(roles).items())))
        object.__setattr__(
            self,
            "cardinalities",
            tuple(sorted(dict(cardinalities).items())),
        )
        object.__setattr__(
            self,
            "attributes",
            tuple(sorted(attributes, key=lambda a: a.name)),
        )
        object.__setattr__(self, "isa", tuple(sorted(isa)))
        object.__setattr__(self, "keys", tuple(frozenset(k) for k in keys))
        if not name:
            raise TranslationError("relationship names must be non-empty")
        if not self.roles:
            raise TranslationError(
                f"relationship {name} needs at least one role"
            )
        role_names = {r for r, _e in self.roles}
        for role, cardinality in self.cardinalities:
            if role not in role_names:
                raise TranslationError(
                    f"relationship {name}: cardinality on unknown role "
                    f"{role!r}"
                )
            if cardinality not in CARDINALITIES:
                raise TranslationError(
                    f"relationship {name}: cardinality must be one of "
                    f"{CARDINALITIES}, got {cardinality!r}"
                )
        labels = role_names | {a.name for a in self.attributes}
        if len(labels) != len(role_names) + len(self.attributes):
            raise TranslationError(
                f"relationship {name}: role and attribute names collide"
            )
        for key in self.keys:
            missing = key - labels
            if missing:
                raise TranslationError(
                    f"relationship {name}: key {sorted(key)} uses unknown "
                    f"label(s) {sorted(missing)}"
                )

    def role_map(self) -> Dict[str, str]:
        """Roles as a plain ``{role: entity}`` dict."""
        return dict(self.roles)

    def cardinality_map(self) -> Dict[str, str]:
        """Cardinalities as a dict, defaulting every role to ``"N"``."""
        table = {role: "N" for role, _e in self.roles}
        table.update(dict(self.cardinalities))
        return table

    def is_binary(self) -> bool:
        """Does the relationship have exactly two roles?"""
        return len(self.roles) == 2


def cardinality_keys(relationship: ERRelationship) -> KeyFamily:
    """Derive the key family a relationship's cardinalities express.

    For a **binary** relationship, a role labelled "1" makes the *other*
    role a key (the Advisor rule of section 5); if no role is labelled
    "1" the full role set is the key (many-many).  For n-ary
    relationships cardinality labels have no agreed meaning (the paper's
    footnote 1), so only explicitly declared keys are used, falling back
    to the full role set.
    """
    declared = KeyFamily(relationship.keys)
    roles = [r for r, _e in relationship.roles]
    if relationship.is_binary():
        derived = []
        cardinalities = relationship.cardinality_map()
        first, second = roles
        if cardinalities[first] == "1":
            derived.append({second})
        if cardinalities[second] == "1":
            derived.append({first})
        if not derived:
            derived.append(set(roles))
        return declared | KeyFamily(derived)
    if not declared.is_empty():
        return declared
    return KeyFamily([set(roles)])


class ERDiagram:
    """A validated ER diagram: entities, relationships and their wiring."""

    __slots__ = ("_entities", "_relationships")

    def __init__(
        self,
        entities: Iterable[EREntity] = (),
        relationships: Iterable[ERRelationship] = (),
    ):
        entity_table: Dict[str, EREntity] = {}
        for entity in entities:
            if entity.name in entity_table:
                raise TranslationError(
                    f"duplicate entity {entity.name!r}"
                )
            entity_table[entity.name] = entity
        relationship_table: Dict[str, ERRelationship] = {}
        for relationship in relationships:
            if (
                relationship.name in relationship_table
                or relationship.name in entity_table
            ):
                raise TranslationError(
                    f"duplicate or clashing name {relationship.name!r}"
                )
            relationship_table[relationship.name] = relationship
        for entity in entity_table.values():
            for parent in entity.isa:
                if parent not in entity_table:
                    raise TranslationError(
                        f"entity {entity.name} ISA unknown entity {parent!r}"
                    )
        for relationship in relationship_table.values():
            for _role, target in relationship.roles:
                if target not in entity_table:
                    raise TranslationError(
                        f"relationship {relationship.name} has a role to "
                        f"unknown entity {target!r}"
                    )
            for parent in relationship.isa:
                if parent not in relationship_table:
                    raise TranslationError(
                        f"relationship {relationship.name} ISA unknown "
                        f"relationship {parent!r}"
                    )
        object.__setattr__(self, "_entities", entity_table)
        object.__setattr__(self, "_relationships", relationship_table)

    @property
    def entities(self) -> Tuple[EREntity, ...]:
        """Entities in name order."""
        return tuple(
            self._entities[k] for k in sorted(self._entities)
        )

    @property
    def relationships(self) -> Tuple[ERRelationship, ...]:
        """Relationships in name order."""
        return tuple(
            self._relationships[k] for k in sorted(self._relationships)
        )

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("ERDiagram is immutable")

    def entity(self, entity_name: str) -> EREntity:
        """Look up an entity by name."""
        try:
            return self._entities[entity_name]
        except KeyError:
            raise TranslationError(f"no entity named {entity_name!r}") from None

    def relationship(self, relationship_name: str) -> ERRelationship:
        """Look up a relationship by name."""
        try:
            return self._relationships[relationship_name]
        except KeyError:
            raise TranslationError(
                f"no relationship named {relationship_name!r}"
            ) from None

    def domains(self) -> FrozenSet[str]:
        """Every attribute domain mentioned anywhere in the diagram."""
        found = set()
        for entity in self._entities.values():
            found.update(a.domain for a in entity.attributes)
        for relationship in self._relationships.values():
            found.update(a.domain for a in relationship.attributes)
        return frozenset(found)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ERDiagram):
            return NotImplemented
        return (
            self._entities == other._entities
            and self._relationships == other._relationships
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._entities.items()),
                frozenset(self._relationships.items()),
            )
        )

    def __repr__(self) -> str:
        return (
            f"ERDiagram({len(self._entities)} entities, "
            f"{len(self._relationships)} relationships)"
        )


def to_schema(diagram: ERDiagram) -> StratifiedSchema:
    """Translate an ER diagram into a stratified general-model schema.

    This is the Figure 1 → Figure 2 translation: attributes become
    arrows to domain classes, roles become arrows to entity classes,
    ISA becomes specialization.
    """
    arrows: List[Tuple[str, str, str]] = []
    spec: List[Tuple[str, str]] = []
    assignment: Dict[str, str] = {}
    for domain in diagram.domains():
        assignment[domain] = "domain"
    for entity in diagram.entities:
        assignment[entity.name] = "entity"
        for attribute in entity.attributes:
            arrows.append((entity.name, attribute.name, attribute.domain))
        for parent in entity.isa:
            spec.append((entity.name, parent))
    for relationship in diagram.relationships:
        assignment[relationship.name] = "relationship"
        for role, target in relationship.roles:
            arrows.append((relationship.name, role, target))
        for attribute in relationship.attributes:
            arrows.append(
                (relationship.name, attribute.name, attribute.domain)
            )
        for parent in relationship.isa:
            spec.append((relationship.name, parent))
    schema = Schema.build(
        classes=list(assignment), arrows=arrows, spec=spec
    )
    named_assignment = {name(cls): s for cls, s in assignment.items()}
    return StratifiedSchema(schema, ER_STRATIFICATION, named_assignment)


def to_keyed_schema(diagram: ERDiagram) -> KeyedSchema:
    """Translate with keys: declared entity keys plus cardinality keys.

    Key families are only attached where the diagram actually asserts
    something (declared keys, or cardinality labels on binary
    relationships); entities without keys keep object identity, per
    section 5's relaxation.
    """
    stratified = to_schema(diagram)
    keys: Dict[str, KeyFamily] = {}
    for entity in diagram.entities:
        if entity.keys:
            keys[entity.name] = KeyFamily(entity.keys)
    for relationship in diagram.relationships:
        family = cardinality_keys(relationship)
        if not family.is_empty():
            keys[relationship.name] = family
    return KeyedSchema(stratified.schema, keys, check_spec_monotone=False)


def from_schema(stratified: StratifiedSchema) -> ERDiagram:
    """Translate a stratified schema back into an ER diagram.

    Entities keep only non-inherited attributes (an arrow of ``p`` is
    inherited if some strict generalization of ``p`` has the same
    arrow); relationships re-declare all roles, as ER diagrams
    conventionally do under relationship ISA (Figure 9).  Only
    canonical targets are used — undoing exactly what the W1/W2
    closure added.  Implicit classes become ordinary entities or
    relationships whose printed name records their origin.  Keys and
    cardinalities are *not* reconstructed here; they belong to the
    keyed layer (:func:`to_keyed_schema` /
    :func:`repro.core.keys.merge_keyed`).
    """
    if stratified.policy != ER_STRATIFICATION:
        raise TranslationError(
            f"expected an ER-stratified schema, got {stratified.policy.name}"
        )
    from repro.core.proper import canonical_class

    schema = stratified.schema
    entities: List[EREntity] = []
    relationships: List[ERRelationship] = []

    def own_labels(cls: ClassName) -> List[str]:
        inherited = set()
        for sup in schema.generalizations_of(cls):
            if sup != cls:
                inherited.update(schema.out_labels(sup))
        return sorted(schema.out_labels(cls) - inherited)

    def own_parents(cls: ClassName) -> List[str]:
        return sorted(
            str(sup)
            for sub, sup in schema.spec_covers()
            if sub == cls
        )

    for cls in sorted(schema.classes, key=sort_key):
        stratum = stratified.stratum_of(cls)
        if stratum == "domain":
            continue
        if stratum == "entity":
            attributes = []
            for label in own_labels(cls):
                target = canonical_class(schema, cls, label)
                attributes.append(ERAttribute(label, str(target)))
            entities.append(
                EREntity(str(cls), attributes=attributes, isa=own_parents(cls))
            )
        else:
            # Relationships re-declare all their roles, even inherited
            # ones — exactly as Figure 9 draws faculty/victim on both
            # Advisor and Committee.
            roles: Dict[str, str] = {}
            attributes = []
            for label in sorted(schema.out_labels(cls)):
                target = canonical_class(schema, cls, label)
                if stratified.stratum_of(target) == "entity":
                    roles[label] = str(target)
                else:
                    attributes.append(ERAttribute(label, str(target)))
            if not roles:
                raise TranslationError(
                    f"relationship {cls} has no role arrows; cannot "
                    "translate back to ER"
                )
            relationships.append(
                ERRelationship(
                    str(cls),
                    roles=roles,
                    attributes=attributes,
                    isa=own_parents(cls),
                )
            )
    return ERDiagram(entities=entities, relationships=relationships)


def merge_er(
    *diagrams: ERDiagram, assertions: Iterable[Schema] = ()
) -> ERDiagram:
    """Merge ER diagrams via the general model (the section 7 pipeline).

    Translate each diagram, merge the stratified schemas (checking that
    strata are preserved — a mixed-stratum implicit class means the
    diagrams had a structural conflict), and translate the result back.
    """
    stratified = [to_schema(d) for d in diagrams]
    merged = merge_stratified(*stratified, assertions=assertions)
    return from_schema(merged)
