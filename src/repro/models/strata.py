"""Stratification: how restricted data models embed in the general one.

Section 2 explains that the relational and ER models are obtained from
the general model by *stratifying* the class set — assigning each class
to a stratum (relations vs. attribute domains; entities vs.
relationships vs. domains) and restricting which strata arrows and
specializations may connect.  Section 7 then claims the crucial
preservation theorem: the merge "preserves strata", so one can merge
schemas of a restricted model by translating into the general model,
merging there, and translating back.

This module makes that machinery first-class:

* :class:`Stratification` — a named policy: the strata, which
  ``(source, target)`` stratum pairs arrows may connect (per label
  family), and which pairs specializations may connect;
* :class:`StratifiedSchema` — a schema plus a total stratum assignment,
  validated against a policy;
* :func:`merge_stratified` — merge the underlying schemas and re-derive
  the assignment, *checking* the preservation theorem on the way:
  every implicit class must sit unambiguously inside one stratum
  (its members all share it), otherwise the inputs had a structural
  conflict and a :class:`~repro.exceptions.TranslationError` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union

from repro.core.implicit import is_implicit
from repro.core.merge import upper_merge
from repro.core.names import ClassName, GenName, ImplicitName, name, sort_key
from repro.core.schema import Schema
from repro.exceptions import TranslationError

__all__ = [
    "Stratification",
    "StratifiedSchema",
    "merge_stratified",
    "RELATIONAL_STRATIFICATION",
    "ER_STRATIFICATION",
]

NameLike = Union[ClassName, str]


@dataclass(frozen=True)
class Stratification:
    """A stratification policy for a restricted data model.

    ``arrow_rules`` lists the allowed ``(source_stratum, target_stratum)``
    pairs for arrow edges; ``spec_rules`` does the same for
    specialization edges (reflexive pairs are always allowed and need
    not be listed).
    """

    name: str
    strata: Tuple[str, ...]
    arrow_rules: FrozenSet[Tuple[str, str]]
    spec_rules: FrozenSet[Tuple[str, str]]

    def __post_init__(self):
        known = set(self.strata)
        for rule_set, kind in (
            (self.arrow_rules, "arrow"),
            (self.spec_rules, "spec"),
        ):
            for source, target in rule_set:
                if source not in known or target not in known:
                    raise TranslationError(
                        f"{self.name}: {kind} rule ({source}, {target}) "
                        "mentions an unknown stratum"
                    )

    def allows_arrow(self, source: str, target: str) -> bool:
        """May an arrow run from *source* stratum to *target* stratum?"""
        return (source, target) in self.arrow_rules

    def allows_spec(self, sub: str, sup: str) -> bool:
        """May a specialization run from *sub* stratum to *sup* stratum?"""
        return (sub, sup) in self.spec_rules


#: First normal form, section 2: two strata, arrows only from relations
#: to attribute domains, no specialization at all.
RELATIONAL_STRATIFICATION = Stratification(
    name="relational",
    strata=("relation", "domain"),
    arrow_rules=frozenset({("relation", "domain")}),
    spec_rules=frozenset(),
)

#: The ER model, section 2: attribute domains, entities and
#: relationships; relationships point at entities (roles) and domains
#: (attributes), entities point at domains; ISA within entities and —
#: Figure 9 — within relationships.
ER_STRATIFICATION = Stratification(
    name="entity-relationship",
    strata=("domain", "entity", "relationship"),
    arrow_rules=frozenset(
        {
            ("entity", "domain"),
            ("relationship", "entity"),
            ("relationship", "domain"),
        }
    ),
    spec_rules=frozenset(
        {("entity", "entity"), ("relationship", "relationship")}
    ),
)


class StratifiedSchema:
    """A schema with a total, policy-conforming stratum assignment."""

    __slots__ = ("_schema", "_policy", "_assignment")

    def __init__(
        self,
        schema: Schema,
        policy: Stratification,
        assignment: Mapping[NameLike, str],
    ):
        table: Dict[ClassName, str] = {
            name(cls): stratum for cls, stratum in assignment.items()
        }
        known = set(policy.strata)
        for cls in schema.classes:
            stratum = table.get(cls)
            if stratum is None:
                raise TranslationError(
                    f"{policy.name}: class {cls} has no stratum"
                )
            if stratum not in known:
                raise TranslationError(
                    f"{policy.name}: class {cls} assigned unknown stratum "
                    f"{stratum!r}"
                )
        for extra in set(table) - schema.classes:
            raise TranslationError(
                f"{policy.name}: assignment mentions unknown class {extra}"
            )
        for source, label, target in schema.arrows:
            if not policy.allows_arrow(table[source], table[target]):
                raise TranslationError(
                    f"{policy.name}: arrow {source} --{label}--> {target} "
                    f"connects {table[source]} to {table[target]}, which "
                    "the stratification forbids"
                )
        for sub, sup in schema.strict_spec():
            if not policy.allows_spec(table[sub], table[sup]):
                raise TranslationError(
                    f"{policy.name}: specialization {sub} ==> {sup} "
                    f"connects {table[sub]} to {table[sup]}, which the "
                    "stratification forbids"
                )
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_policy", policy)
        object.__setattr__(self, "_assignment", table)

    @property
    def schema(self) -> Schema:
        """The underlying general-model schema."""
        return self._schema

    @property
    def policy(self) -> Stratification:
        """The stratification policy this schema conforms to."""
        return self._policy

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("StratifiedSchema is immutable")

    def stratum_of(self, cls: NameLike) -> str:
        """The stratum of class *cls*."""
        return self._assignment[name(cls)]

    def classes_in(self, stratum: str) -> FrozenSet[ClassName]:
        """All classes assigned to *stratum*."""
        return frozenset(
            cls for cls, s in self._assignment.items() if s == stratum
        )

    def assignment(self) -> Dict[ClassName, str]:
        """A copy of the full stratum assignment."""
        return dict(self._assignment)

    def __eq__(self, other) -> bool:
        if not isinstance(other, StratifiedSchema):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._policy == other._policy
            and self._assignment == other._assignment
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema,
                self._policy.name,
                frozenset(self._assignment.items()),
            )
        )

    def __repr__(self) -> str:
        counts = {
            stratum: len(self.classes_in(stratum))
            for stratum in self._policy.strata
        }
        pretty = ", ".join(f"{k}={v}" for k, v in counts.items())
        return f"StratifiedSchema({self._policy.name}; {pretty})"


def _stratum_for_implicit(
    cls: ClassName,
    assignment: Mapping[ClassName, str],
    policy: Stratification,
) -> str:
    """The stratum of an implicit class: the unanimous stratum of its members."""
    members = cls.members if isinstance(cls, (ImplicitName, GenName)) else ()
    strata = set()
    for member in members:
        if member in assignment:
            strata.add(assignment[member])
        else:
            strata.add(_stratum_for_implicit(member, assignment, policy))
    if len(strata) != 1:
        raise TranslationError(
            f"{policy.name}: implicit class {cls} mixes strata "
            f"{sorted(strata)}; the inputs have a structural conflict "
            "(e.g. an attribute in one schema is an entity in another)"
        )
    return next(iter(strata))


def merge_stratified(
    *inputs: StratifiedSchema,
    assertions: Iterable[Schema] = (),
) -> StratifiedSchema:
    """Merge within a restricted model: the section 7 round trip.

    All inputs must share one policy.  The underlying schemas are
    merged with the ordinary upper merge; classes shared between inputs
    must agree on their stratum; implicit classes inherit the unanimous
    stratum of their members.  The preservation theorem then shows the
    result again conforms to the policy — which the
    :class:`StratifiedSchema` constructor independently re-checks, so a
    violation would surface as an exception rather than silent damage.
    """
    if not inputs:
        raise TranslationError("merge_stratified needs at least one input")
    policy = inputs[0].policy
    for other in inputs[1:]:
        if other.policy != policy:
            raise TranslationError(
                f"cannot merge across stratifications {policy.name!r} and "
                f"{other.policy.name!r}"
            )
    combined: Dict[ClassName, str] = {}
    for stratified in inputs:
        for cls, stratum in stratified.assignment().items():
            existing = combined.get(cls)
            if existing is not None and existing != stratum:
                raise TranslationError(
                    f"{policy.name}: class {cls} is a {existing} in one "
                    f"schema and a {stratum} in another — rename one of "
                    "them before merging (structural conflict)"
                )
            combined[cls] = stratum
    merged = upper_merge(*(s.schema for s in inputs), assertions=assertions)
    for cls in sorted(merged.classes, key=sort_key):
        if cls not in combined:
            if not is_implicit(cls):
                raise TranslationError(
                    f"{policy.name}: merged class {cls} (from an assertion) "
                    "has no stratum; stratify assertion classes explicitly"
                )
            combined[cls] = _stratum_for_implicit(cls, combined, policy)
    assignment = {
        cls: stratum for cls, stratum in combined.items() if cls in merged.classes
    }
    return StratifiedSchema(merged, policy, assignment)
