"""The functional substrate model (DAPLEX / Multibase style, section 2).

The paper observes that proper schemas "could equally well have defined
the arrows as partial functions from classes to classes, which is how
they are expressed in the definition of a functional schema" — citing
DAPLEX [6], Multibase [2] and Motro's superviews [1], whose axioms are
exactly conditions D1 and D2.

:class:`FunctionalSchema` is that presentation made concrete: classes,
an ISA hierarchy and a table of *functions* ``(class, label) → class``.
Translation to the general model goes through
:func:`repro.core.proper.from_canonical`; translation back extracts
canonical arrows.  The round trip is the identity on functional schemas
whose function table is D2-complete, which the property tests verify.

Merging functional schemas (:func:`merge_functional`) is the paper's
translate–merge–translate-back pipeline; the merge may invent implicit
classes, which come back as ordinary classes with origin-recording
names, and always yields a proper — hence functional — result.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union

from repro.core.merge import upper_merge
from repro.core.names import ClassName, Label, name
from repro.core.proper import canonical_arrows, from_canonical
from repro.core.schema import Schema
from repro.exceptions import TranslationError

__all__ = ["FunctionalSchema", "to_schema", "from_schema", "merge_functional"]

NameLike = Union[ClassName, str]


class FunctionalSchema:
    """A schema in functional presentation: ISA + partial functions.

    ``functions`` maps ``(class, label)`` to the function's result
    class — the canonical arrow ``⇀``.  D1 holds by construction; D2
    (specializations must refine inherited functions) can be
    established automatically with ``inherit=True``, which copies each
    function down the ISA hierarchy wherever a specialization lacks its
    own refinement — how DAPLEX-style models treat inheritance.
    """

    __slots__ = ("_classes", "_isa", "_functions")

    def __init__(
        self,
        classes: Iterable[NameLike] = (),
        isa: Iterable[Tuple[NameLike, NameLike]] = (),
        functions: Mapping[Tuple[NameLike, Label], NameLike] = (),
        inherit: bool = True,
    ):
        class_set = {name(c) for c in classes}
        isa_pairs = {(name(a), name(b)) for a, b in isa}
        table: Dict[Tuple[ClassName, Label], ClassName] = {}
        functions = dict(functions)
        for (cls_raw, label), target_raw in functions.items():
            cls, target = name(cls_raw), name(target_raw)
            class_set.update((cls, target))
            table[(cls, label)] = target
        for sub, sup in isa_pairs:
            class_set.update((sub, sup))
        if inherit:
            table = _inherit_functions(class_set, isa_pairs, table)
        object.__setattr__(self, "_classes", frozenset(class_set))
        object.__setattr__(self, "_isa", frozenset(isa_pairs))
        object.__setattr__(self, "_functions", table)

    @property
    def classes(self) -> FrozenSet[ClassName]:
        """All classes."""
        return self._classes

    @property
    def isa(self) -> FrozenSet[Tuple[ClassName, ClassName]]:
        """The declared (non-closed) ISA edges."""
        return self._isa

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("FunctionalSchema is immutable")

    def functions_of(self, cls: NameLike) -> Dict[Label, ClassName]:
        """Every function defined on *cls*, as ``{label: result}``."""
        p = name(cls)
        return {
            label: target
            for (source, label), target in self._functions.items()
            if source == p
        }

    def function_table(self) -> Dict[Tuple[ClassName, Label], ClassName]:
        """A copy of the full ``(class, label) → class`` table."""
        return dict(self._functions)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FunctionalSchema):
            return NotImplemented
        return (
            self._classes == other._classes
            and self._isa == other._isa
            and self._functions == other._functions
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._classes,
                self._isa,
                frozenset(self._functions.items()),
            )
        )

    def __repr__(self) -> str:
        return (
            f"FunctionalSchema({len(self._classes)} classes, "
            f"{len(self._functions)} function(s))"
        )


def _inherit_functions(
    classes: Iterable[ClassName],
    isa: Iterable[Tuple[ClassName, ClassName]],
    table: Dict[Tuple[ClassName, Label], ClassName],
) -> Dict[Tuple[ClassName, Label], ClassName]:
    """Copy functions down the ISA order where no refinement exists (D2)."""
    from repro.core import relations

    class_set = frozenset(classes)
    closed = relations.reflexive_transitive_closure(frozenset(isa), class_set)
    if not relations.is_antisymmetric(closed):
        cycle = relations.find_cycle(closed) or ()
        raise TranslationError(
            "ISA edges form a cycle: " + " ==> ".join(str(c) for c in cycle)
        )
    completed = dict(table)
    # Walk generalizations from most general downward so that multi-level
    # chains inherit transitively.
    order = relations.topological_order(class_set, closed)
    for cls in reversed(order):
        for sup in relations.up_set(cls, closed):
            if sup == cls:
                continue
            for (source, label), target in list(completed.items()):
                if source == sup and (cls, label) not in completed:
                    completed[(cls, label)] = target
    return completed


def to_schema(functional: FunctionalSchema) -> Schema:
    """Translate a functional schema into the general model.

    Uses :func:`repro.core.proper.from_canonical`, so the result is a
    proper schema whose canonical arrows are exactly the input's
    function table (D2 is verified along the way).
    """
    return from_canonical(
        classes=functional.classes,
        spec=functional.isa,
        canon=functional.function_table(),
    )


def from_schema(schema: Schema) -> FunctionalSchema:
    """Translate a proper schema back to functional presentation.

    The ISA edges kept are the Hasse covers (the closure is re-derived
    on the way back in), and the function table is the canonical-arrow
    table.  Raises :class:`~repro.exceptions.NotProperError` on weak
    schemas — the functional model cannot express them.
    """
    return FunctionalSchema(
        classes=schema.classes,
        isa=schema.spec_covers(),
        functions=canonical_arrows(schema),
        inherit=False,
    )


def merge_functional(
    *functionals: FunctionalSchema, assertions: Iterable[Schema] = ()
) -> FunctionalSchema:
    """Merge functional schemas via the general model.

    The merged proper schema translates straight back: properization
    guarantees canonical classes exist, so the functional model is
    closed under our merge — the section 7 claim, here for the
    functional stratum.
    """
    merged = upper_merge(
        *(to_schema(f) for f in functionals), assertions=assertions
    )
    return from_schema(merged)
