"""Substrate data models (ER, relational, functional) and stratification."""
