"""The object-oriented substrate model and its round-trip translation.

Section 2 singles out two features "commonly found in object-oriented
data models" that the general graph model captures directly: *higher
order relations* (relationships between relationships — here, classes
whose attributes reference arbitrary classes) and *complex data
structures* ("such as circular definitions of entities and
relationships").  Section 5 adds the identity story: "by relaxing this
constraint, so that a class may have no key at all, we can capture
models in which there is a notion of object identity."

This module realises that object-oriented model:

* an :class:`OOClass` has named, typed attributes and any number of
  base classes (multiple inheritance is the ISA partial order);
* attribute types are either other classes (references — circularity
  and self-reference are legal) or *value types* (ints, strings, ...),
  which are atomic: no attributes, no inheritance;
* classes have **object identity** — no key constraints at all, which
  is precisely the empty :class:`~repro.core.keys.KeyFamily`.

The embedding into the general model is a two-stratum
:class:`~repro.models.strata.Stratification` (objects and values), so
the section 7 merge-by-translation pipeline — translate, merge in the
general model, check strata preservation, translate back — comes for
free from :func:`~repro.models.strata.merge_stratified`; implicit
classes survive the round trip as classes whose names record their
origin, and :func:`merge_oo` inherits associativity and commutativity
from the underlying upper merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple, Union

from repro.core.names import ClassName, name, sort_key
from repro.core.proper import canonical_class
from repro.core.schema import Schema
from repro.exceptions import TranslationError
from repro.models.strata import (
    Stratification,
    StratifiedSchema,
    merge_stratified,
)

__all__ = [
    "OOAttribute",
    "OOClass",
    "OODiagram",
    "OO_STRATIFICATION",
    "to_schema",
    "from_schema",
    "merge_oo",
    "format_diagram",
]

NameLike = Union[ClassName, str]

#: Two strata: object classes reference objects and values; value types
#: are atomic (no outgoing arrows, no inheritance).
OO_STRATIFICATION = Stratification(
    name="object-oriented",
    strata=("object", "value"),
    arrow_rules=frozenset({("object", "object"), ("object", "value")}),
    spec_rules=frozenset({("object", "object")}),
)


@dataclass(frozen=True)
class OOAttribute:
    """A named attribute with its type (a class or a value type)."""

    name: str
    type_name: str

    def __post_init__(self):
        if not self.name or not self.type_name:
            raise TranslationError(
                "attribute names and types must be non-empty"
            )


@dataclass(frozen=True)
class OOClass:
    """A class definition: attributes plus base classes.

    ``bases`` may name several classes (multiple inheritance) and the
    reference graph may be cyclic — ``Person.spouse: Person`` or
    mutually recursive ``Order``/``Invoice`` definitions are fine, per
    the paper's "circular definitions" remark.

    Attributes and bases are stored sorted by name, so two class
    definitions that differ only in declaration order compare equal —
    declaration order carries no information in the model.
    """

    name: str
    attributes: Tuple[OOAttribute, ...] = ()
    bases: Tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        attributes: Iterable[OOAttribute] = (),
        bases: Iterable[str] = (),
    ):
        if not name:
            raise TranslationError("class names must be non-empty")
        attribute_tuple = tuple(
            sorted(attributes, key=lambda a: getattr(a, "name", ""))
        )
        seen = set()
        for attribute in attribute_tuple:
            if not isinstance(attribute, OOAttribute):
                raise TranslationError(
                    f"attributes of {name} must be OOAttribute instances, "
                    f"got {attribute!r}"
                )
            if attribute.name in seen:
                raise TranslationError(
                    f"class {name} declares attribute {attribute.name!r} "
                    "twice"
                )
            seen.add(attribute.name)
        base_tuple = tuple(sorted(bases))
        if len(set(base_tuple)) != len(base_tuple):
            raise TranslationError(
                f"class {name} lists a base class twice"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attribute_tuple)
        object.__setattr__(self, "bases", base_tuple)

    def attribute_names(self) -> FrozenSet[str]:
        """The names of this class's own (declared) attributes."""
        return frozenset(a.name for a in self.attributes)


def _strict_ancestors(
    direct: Dict[str, Tuple[str, ...]]
) -> Dict[str, FrozenSet[str]]:
    """Strict ancestors per class, raising on an inheritance cycle."""
    resolved: Dict[str, FrozenSet[str]] = {}
    in_progress: set = set()

    def visit(cls: str) -> FrozenSet[str]:
        if cls in resolved:
            return resolved[cls]
        if cls in in_progress:
            raise TranslationError(
                f"inheritance cycle through class {cls!r}"
            )
        in_progress.add(cls)
        collected: set = set()
        for base in direct.get(cls, ()):
            collected.add(base)
            collected |= visit(base)
        in_progress.discard(cls)
        resolved[cls] = frozenset(collected)
        return resolved[cls]

    for cls in direct:
        visit(cls)
    return resolved


def _reduce_bases(classes: Tuple[OOClass, ...]) -> Tuple[OOClass, ...]:
    """Canonicalize every class's base list to inheritance covers."""
    direct = {cls.name: cls.bases for cls in classes}
    ancestors = _strict_ancestors(direct)
    reduced = []
    for cls in classes:
        covers = tuple(
            base
            for base in cls.bases
            if not any(
                base in ancestors[other]
                for other in cls.bases
                if other != base
            )
        )
        if covers == cls.bases:
            reduced.append(cls)
        else:
            reduced.append(
                OOClass(cls.name, attributes=cls.attributes, bases=covers)
            )
    return tuple(reduced)


@dataclass(frozen=True)
class OODiagram:
    """A class diagram: a set of class definitions.

    Attribute types that are not class names are inferred to be value
    types, mirroring how ER diagrams write ``addr:place`` without
    declaring ``place`` anywhere.  A name may not be both (a value type
    is atomic).  Base classes must be classes of the diagram, and the
    inheritance graph must be acyclic (ISA is the model's partial
    order).

    Base lists are canonicalized to the *covers* of the inheritance
    order: declaring ``bases=("A", "B")`` when ``B`` already inherits
    from ``A`` is the same diagram as declaring ``bases=("B",)`` — a
    redundant base edge carries no information, exactly as the paper
    omits specialization edges implied by transitivity.
    """

    classes: Tuple[OOClass, ...] = ()
    value_types: FrozenSet[str] = field(default_factory=frozenset)

    def __init__(
        self,
        classes: Iterable[OOClass] = (),
        value_types: Iterable[str] = (),
    ):
        class_tuple = tuple(classes)
        class_names = set()
        for cls in class_tuple:
            if not isinstance(cls, OOClass):
                raise TranslationError(
                    f"diagram classes must be OOClass instances, got {cls!r}"
                )
            if cls.name in class_names:
                raise TranslationError(
                    f"diagram declares class {cls.name!r} twice"
                )
            class_names.add(cls.name)
        declared_values = set(value_types)
        overlap = declared_values & class_names
        if overlap:
            raise TranslationError(
                f"{sorted(overlap)} declared both as class and value type"
            )
        inferred = set(declared_values)
        for cls in class_tuple:
            for base in cls.bases:
                if base not in class_names:
                    raise TranslationError(
                        f"class {cls.name} inherits from unknown class "
                        f"{base!r} (value types cannot be inherited from)"
                    )
            for attribute in cls.attributes:
                if attribute.type_name not in class_names:
                    inferred.add(attribute.type_name)
        class_tuple = _reduce_bases(class_tuple)
        object.__setattr__(self, "classes", class_tuple)
        object.__setattr__(self, "value_types", frozenset(inferred))

    def class_names(self) -> FrozenSet[str]:
        """The names of every class in the diagram."""
        return frozenset(cls.name for cls in self.classes)

    def get_class(self, class_name: str) -> OOClass:
        """Look a class definition up by name."""
        for cls in self.classes:
            if cls.name == class_name:
                return cls
        raise TranslationError(f"no class named {class_name!r}")

    def all_attributes(self, class_name: str) -> Dict[str, str]:
        """Own *and inherited* attributes of a class, as ``name -> type``.

        Subclass declarations win over base declarations with the same
        attribute name (the usual override rule); among multiple bases,
        lexicographically earlier base names win, which keeps the result
        deterministic.
        """
        cls = self.get_class(class_name)
        collected: Dict[str, str] = {}
        for base in sorted(cls.bases, reverse=True):
            collected.update(self.all_attributes(base))
        for attribute in cls.attributes:
            collected[attribute.name] = attribute.type_name
        return collected

    def __eq__(self, other) -> bool:
        if not isinstance(other, OODiagram):
            return NotImplemented
        return (
            frozenset(self.classes) == frozenset(other.classes)
            and self.value_types == other.value_types
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.classes), self.value_types))

    def __repr__(self) -> str:
        return (
            f"OODiagram({len(self.classes)} class(es), "
            f"{len(self.value_types)} value type(s))"
        )


def to_schema(diagram: OODiagram) -> StratifiedSchema:
    """Translate a class diagram into a stratified general-model schema.

    Every class and value type becomes a class of the schema; each
    declared attribute becomes an arrow; each base-class declaration
    becomes a specialization edge.  Attribute inheritance is *not*
    encoded explicitly — the W1 closure of the general model derives it,
    which is exactly the paper's reading of ISA.
    """
    arrows: List[Tuple[str, str, str]] = []
    spec: List[Tuple[str, str]] = []
    assignment: Dict[str, str] = {}
    for value_type in diagram.value_types:
        assignment[value_type] = "value"
    for cls in diagram.classes:
        assignment[cls.name] = "object"
        for attribute in cls.attributes:
            arrows.append((cls.name, attribute.name, attribute.type_name))
        for base in cls.bases:
            spec.append((cls.name, base))
    schema = Schema.build(classes=list(assignment), arrows=arrows, spec=spec)
    named_assignment = {name(cls): s for cls, s in assignment.items()}
    return StratifiedSchema(schema, OO_STRATIFICATION, named_assignment)


def from_schema(stratified: StratifiedSchema) -> OODiagram:
    """Translate a stratified schema back into a class diagram.

    Each object class keeps only its *own* attributes (an arrow is
    inherited when some strict generalization carries the same label)
    at their canonical types, and its base classes are the cover edges
    of the specialization order — undoing exactly what the W1/W2 and
    transitive closures added.  Implicit classes become ordinary
    classes whose printed names record their origin.
    """
    if stratified.policy != OO_STRATIFICATION:
        raise TranslationError(
            f"expected an OO-stratified schema, got {stratified.policy.name}"
        )
    schema = stratified.schema
    classes: List[OOClass] = []
    for cls in sorted(schema.classes, key=sort_key):
        if stratified.stratum_of(cls) != "object":
            continue
        # A label is inherited only when some strict generalization
        # already gives it the *same* canonical type; a class whose
        # canonical type strictly refines its parents' (the Figure 3
        # implicit-class pattern) re-declares the attribute.
        inherited = set()
        for sup in schema.generalizations_of(cls):
            if sup != cls:
                for label in schema.out_labels(sup):
                    inherited.add(
                        (label, canonical_class(schema, sup, label))
                    )
        attributes = []
        for label in sorted(schema.out_labels(cls)):
            target = canonical_class(schema, cls, label)
            if (label, target) in inherited:
                continue
            attributes.append(OOAttribute(label, str(target)))
        bases = sorted(
            str(sup) for sub, sup in schema.spec_covers() if sub == cls
        )
        classes.append(OOClass(str(cls), attributes=attributes, bases=bases))
    value_types = {
        str(cls)
        for cls in schema.classes
        if stratified.stratum_of(cls) == "value"
    }
    return OODiagram(classes=classes, value_types=value_types)


def format_diagram(diagram: OODiagram, title: str = "") -> str:
    """Render a class diagram as deterministic, diff-friendly text.

    One block per class (sorted by name), base classes in parentheses,
    one ``name: type`` line per declared attribute, and a trailing
    value-type summary — the shape the examples and the CLI print.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for cls in sorted(diagram.classes, key=lambda c: c.name):
        bases = f" ({', '.join(cls.bases)})" if cls.bases else ""
        lines.append(f"class {cls.name}{bases}:")
        if not cls.attributes:
            lines.append("  (no declared attributes)")
        for attribute in cls.attributes:
            lines.append(f"  {attribute.name}: {attribute.type_name}")
    if diagram.value_types:
        lines.append(
            "value types: " + ", ".join(sorted(diagram.value_types))
        )
    return "\n".join(lines)


def merge_oo(
    *diagrams: OODiagram, assertions: Iterable[Schema] = ()
) -> OODiagram:
    """Merge class diagrams via the general model (the section 7 pipeline).

    Translate each diagram, merge the stratified schemas — a
    :class:`~repro.exceptions.TranslationError` here means the diagrams
    had a structural conflict, e.g. a value type in one is a class in
    another — and translate the result back.  Inherits associativity
    and commutativity from the underlying upper merge, so diagrams and
    inter-diagram assertions can be combined in any order.
    """
    stratified = [to_schema(d) for d in diagrams]
    merged = merge_stratified(*stratified, assertions=assertions)
    return from_schema(merged)
