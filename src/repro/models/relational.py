"""The first-normal-form relational substrate model (section 2).

Section 2: "for a relational instance, we stratify N into two classes
NR and NA (relations and attribute domains), disallow specialization
edges, and restrict arrows to run labelled with the name of the
attribute from NR to NA (first normal form)."  This module provides
that restricted model as first-class objects —
:class:`RelationSchema` / :class:`RelationalDatabase` — with the
round-trip translation into the general model and the merge-by-
translation pipeline.

Because relational schemas have no specialization, their merges never
create implicit classes: merging is pure union of relations with union
of attribute sets for same-named relations (the ``Dog`` example of
section 3), and key families combine pointwise.  Both facts are
verified by the test suite rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.core.keys import KeyFamily, KeyedSchema, merge_keyed
from repro.core.names import ClassName, name, sort_key
from repro.core.proper import canonical_class
from repro.core.schema import Schema
from repro.exceptions import TranslationError
from repro.models.strata import (
    RELATIONAL_STRATIFICATION,
    StratifiedSchema,
    merge_stratified,
)

__all__ = [
    "RelationSchema",
    "RelationalDatabase",
    "to_schema",
    "to_keyed_schema",
    "from_schema",
    "merge_relational",
]


@dataclass(frozen=True)
class RelationSchema:
    """One relation: a name, typed attributes and optional keys."""

    name: str
    attributes: Tuple[Tuple[str, str], ...]
    keys: Tuple[FrozenSet[str], ...] = ()

    def __init__(
        self,
        name: str,
        attributes: Mapping[str, str],
        keys: Iterable[Iterable[str]] = (),
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self, "attributes", tuple(sorted(dict(attributes).items()))
        )
        object.__setattr__(self, "keys", tuple(frozenset(k) for k in keys))
        if not name:
            raise TranslationError("relation names must be non-empty")
        if not self.attributes:
            raise TranslationError(
                f"relation {name} needs at least one attribute"
            )
        attribute_names = {a for a, _d in self.attributes}
        for key in self.keys:
            missing = key - attribute_names
            if missing:
                raise TranslationError(
                    f"relation {name}: key {sorted(key)} uses unknown "
                    f"attribute(s) {sorted(missing)}"
                )

    def attribute_map(self) -> Dict[str, str]:
        """Attributes as a plain ``{attribute: domain}`` dict."""
        return dict(self.attributes)

    def attribute_names(self) -> FrozenSet[str]:
        """The set of attribute names."""
        return frozenset(a for a, _d in self.attributes)


class RelationalDatabase:
    """A set of relation schemas — a first-normal-form database schema."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        table: Dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in table:
                raise TranslationError(
                    f"duplicate relation {relation.name!r}"
                )
            table[relation.name] = relation
        object.__setattr__(self, "_relations", table)

    @property
    def relations(self) -> Tuple[RelationSchema, ...]:
        """Relations in name order."""
        return tuple(self._relations[k] for k in sorted(self._relations))

    def __setattr__(self, key, val):  # pragma: no cover - immutability guard
        raise AttributeError("RelationalDatabase is immutable")

    def relation(self, relation_name: str) -> RelationSchema:
        """Look up a relation by name."""
        try:
            return self._relations[relation_name]
        except KeyError:
            raise TranslationError(
                f"no relation named {relation_name!r}"
            ) from None

    def domains(self) -> FrozenSet[str]:
        """Every attribute domain mentioned in the database."""
        return frozenset(
            domain
            for relation in self._relations.values()
            for _a, domain in relation.attributes
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, RelationalDatabase):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        return f"RelationalDatabase({len(self._relations)} relation(s))"


def to_schema(database: RelationalDatabase) -> StratifiedSchema:
    """Translate a relational database into a stratified schema."""
    arrows: List[Tuple[str, str, str]] = []
    assignment: Dict[ClassName, str] = {}
    for domain in database.domains():
        assignment[name(domain)] = "domain"
    for relation in database.relations:
        assignment[name(relation.name)] = "relation"
        for attribute, domain in relation.attributes:
            arrows.append((relation.name, attribute, domain))
    schema = Schema.build(classes=list(assignment), arrows=arrows)
    return StratifiedSchema(schema, RELATIONAL_STRATIFICATION, assignment)


def to_keyed_schema(database: RelationalDatabase) -> KeyedSchema:
    """Translate with declared key families attached."""
    stratified = to_schema(database)
    keys = {
        relation.name: KeyFamily(relation.keys)
        for relation in database.relations
        if relation.keys
    }
    return KeyedSchema(stratified.schema, keys, check_spec_monotone=False)


def from_schema(stratified: StratifiedSchema) -> RelationalDatabase:
    """Translate a relational-stratified schema back to relations."""
    if stratified.policy != RELATIONAL_STRATIFICATION:
        raise TranslationError(
            "expected a relational-stratified schema, got "
            f"{stratified.policy.name}"
        )
    schema = stratified.schema
    relations: List[RelationSchema] = []
    for cls in sorted(stratified.classes_in("relation"), key=sort_key):
        attributes = {}
        for label in sorted(schema.out_labels(cls)):
            attributes[label] = str(canonical_class(schema, cls, label))
        relations.append(RelationSchema(str(cls), attributes))
    return RelationalDatabase(relations)


def merge_relational(
    *databases: RelationalDatabase,
) -> RelationalDatabase:
    """Merge relational databases via the general model.

    Same-named relations collapse into one relation with the union of
    their attributes — the section 3 ``Dog`` example.  Attribute-domain
    conflicts (one schema types ``age`` as ``int``, another as
    ``string``) surface as distinct arrows from the same relation; with
    no specialization available the reach set has no least element and
    the merged schema cannot be made relational again, so a
    :class:`~repro.exceptions.TranslationError` is raised, naming the
    conflict — the paper's "the user must re-assess" outcome.
    """
    typings: Dict[Tuple[str, str], str] = {}
    for database in databases:
        for relation in database.relations:
            for attribute, domain in relation.attributes:
                existing = typings.get((relation.name, attribute))
                if existing is not None and existing != domain:
                    raise TranslationError(
                        f"attribute {attribute!r} of relation "
                        f"{relation.name} is typed differently across "
                        f"inputs ({existing} vs {domain}); rename one of "
                        "the attributes and re-merge"
                    )
                typings[(relation.name, attribute)] = domain
    stratified = [to_schema(d) for d in databases]
    merged = merge_stratified(*stratified)
    return from_schema(merged)


def merge_relational_keyed(
    *databases: RelationalDatabase,
) -> Tuple[RelationalDatabase, Dict[str, KeyFamily]]:
    """Merge with keys: returns the merged database and its key table.

    The key table is the unique minimal satisfactory assignment of
    section 5 restricted to relations (domains never carry keys).
    """
    merged = merge_relational(*databases)
    keyed_inputs = [to_keyed_schema(d) for d in databases]
    keyed_merge = merge_keyed(*(k for k in keyed_inputs))
    table: Dict[str, KeyFamily] = {}
    for relation in merged.relations:
        family = keyed_merge.keys_of(relation.name)
        if not family.is_empty():
            table[relation.name] = family
    return merged, table
